// Circular persistent metadata log on the SSD (Section III-B/III-C).
//
// New mapping entries accumulate in the NVRAM metadata buffer; when a page's
// worth is buffered, it is appended at the tail of a fixed partition at the
// front of the SSD. Garbage collection is oldest-first: live entries of the
// head page are re-inserted into the buffer and eventually rewritten at the
// tail. Liveness is tracked through an in-memory list per log page (the
// paper's optimisation: GC never re-reads flash) — a committed entry is live
// iff its DAZ slot's `home_log_page` still names that page.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cache/backend.hpp"
#include "cache/nvram.hpp"
#include "cache/sets.hpp"

namespace kdd {

class MetadataLog {
 public:
  /// `gc_threshold` is the fill fraction of the partition above which GC runs.
  MetadataLog(CacheSsd* ssd, NvramState* nvram, CacheSets* sets,
              double gc_threshold = 0.90);

  /// Buffers a mapping entry; commits a full buffer to the log tail and runs
  /// GC as needed. The slot's `home_log_page` is updated on commit.
  void add_entry(const MetadataEntry& entry, IoPlan* plan);

  /// Forces the (possibly partial) buffer out to the log (shutdown/flush).
  void commit_buffer(IoPlan* plan);

  std::uint64_t used_pages() const { return nvram_->log_tail - nvram_->log_head; }
  std::uint64_t partition_pages() const { return ssd_->metadata_pages(); }
  std::uint64_t pages_written() const { return pages_written_; }
  std::uint64_t gc_passes() const { return gc_passes_; }
  /// Log pages replay could not use at all (unreadable, wrong sequence
  /// number, or corrupt header — e.g. a torn write that persisted nothing).
  std::uint64_t bad_pages_skipped() const { return bad_pages_skipped_; }
  /// Entries discarded from the torn tail of otherwise-valid pages (per-entry
  /// CRC-8 mismatch: the page write persisted only a sector prefix).
  std::uint64_t torn_entries_dropped() const { return torn_entries_dropped_; }

  /// Power-failure recovery: replays every committed page from head to tail
  /// and returns the entries in commit order (later entries override earlier
  /// ones for the same DAZ slot). In prototype mode the pages are read and
  /// deserialised from the SSD; in counter mode the in-memory mirror is used.
  std::vector<MetadataEntry> replay(IoPlan* plan = nullptr);

  /// Rebuilds the in-memory mirror and slot home pointers from a replay
  /// (used after recovery constructs a fresh MetadataLog).
  void rebuild_after_recovery(IoPlan* plan = nullptr);

  /// Page layout: u16 entry count + u64 page sequence number, then
  /// kSerializedSize-byte entries. The sequence number detects a page whose
  /// write never reached the media (the slot still holds a previous lap);
  /// the per-entry CRC-8 (over payload ‖ sequence) detects a torn tail.
  static constexpr std::size_t kPageHeaderSize = 10;
  static constexpr std::size_t kEntriesPerPage =
      (kPageSize - kPageHeaderSize) / MetadataEntry::kSerializedSize;

 private:
  void commit_entries(std::vector<MetadataEntry> entries, IoPlan* plan);
  void collect_one_page(IoPlan* plan);
  void serialize_page(const std::vector<MetadataEntry>& entries, std::uint64_t seq,
                      Page& out) const;
  /// Returns false when the whole page is unusable (header corrupt or
  /// sequence mismatch). Otherwise appends the valid prefix of entries to
  /// `out` and adds the number of torn-tail entries discarded to `*dropped`.
  static bool deserialize_page(std::span<const std::uint8_t> in,
                               std::uint64_t expected_seq,
                               std::vector<MetadataEntry>& out, std::size_t* dropped);

  CacheSsd* ssd_;
  NvramState* nvram_;
  CacheSets* sets_;
  double gc_threshold_;
  bool in_gc_ = false;
  std::uint64_t pages_written_ = 0;
  std::uint64_t gc_passes_ = 0;
  std::uint64_t bad_pages_skipped_ = 0;
  std::uint64_t torn_entries_dropped_ = 0;
  /// In-memory mirror of committed pages, keyed by monotonic page counter.
  std::unordered_map<std::uint64_t, std::vector<MetadataEntry>> mirror_;
};

}  // namespace kdd
