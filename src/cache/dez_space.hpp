// DezSpace: variable-size extent accounting and placement for the delta
// zone (ROADMAP Open item 3, after Elastic RAID / arXiv 2209.04432).
//
// The DEZ packs LZ-compressed deltas many-per-page, but the original space
// management was page-granular and write-once: a DEZ page was filled
// first-fit at commit time, then only ever *lost* bytes (invalidated deltas
// leave dead holes) until its valid count hit zero. DezSpace upgrades that
// to an elastic byte-space manager:
//
//   * every DEZ page is an *extent* with a tail (append offset), live bytes
//     and dead bytes — fragmentation is first-class state, not something a
//     scan has to reconstruct;
//   * partially-filled extents are kept *open* in size-class bins keyed by
//     remaining tail room, so later commits can append into the slack
//     instead of burning a fresh cache page (the variable-size allocator);
//   * extents whose dead-byte ratio crosses a threshold are offered as GC
//     victims so the delta-zone defragmenter can relocate the few live
//     deltas and return whole pages to the DAZ.
//
// DezSpace is pure bookkeeping over packed sizes: it never touches data and
// never draws randomness, so it behaves identically in counter mode and in
// the byte-accurate prototype, and keeping the *accounting* always-on does
// not perturb any existing deterministic replay. Placement, GC and the
// adaptive DAZ/DEZ boundary that consume this state are opt-in PolicyConfig
// knobs (see policy.hpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace kdd {

class DezSpace {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  /// Size-class grain: open extents are binned by floor(log2(remaining/64)).
  static constexpr std::uint32_t kGrain = 64;
  static constexpr int kNumClasses = 7;  ///< 64,128,...,4096 bytes remaining

  struct Extent {
    bool active = false;  ///< idx currently is a DEZ page
    bool open = false;    ///< eligible for tail appends (member of a bin)
    std::uint32_t tail = 0;        ///< append offset = bytes ever packed here
    std::uint32_t live_bytes = 0;  ///< packed bytes still referenced
    std::uint32_t live_count = 0;  ///< live deltas (mirrors slot valid_count)
    std::int8_t bin = -1;          ///< size-class bin, -1 when not open
    std::uint32_t bin_pos = 0;     ///< index within bins_[bin] for O(1) removal

    std::uint32_t dead_bytes() const { return tail - live_bytes; }
    std::uint32_t remaining() const {
      return tail >= kPageSize ? 0 : static_cast<std::uint32_t>(kPageSize) - tail;
    }
  };

  DezSpace() = default;

  /// Sizes the extent table for a cache of `pages` slots and clears all state.
  void reset(std::uint64_t pages);
  /// Drops every extent (SSD replacement: the whole delta zone is gone).
  void clear();

  // -- Extent lifecycle -------------------------------------------------------
  /// A fresh DEZ page: tail 0, no live bytes, open for appends.
  void open_page(std::uint32_t idx);
  /// A packed delta of `len` bytes landed at the tail; returns its offset.
  std::uint32_t append(std::uint32_t idx, std::uint32_t len);
  /// No further appends (fixed layout, or recovery-restored extents).
  void close_page(std::uint32_t idx);
  /// A delta of `len` bytes was invalidated: live -> dead.
  void on_dead(std::uint32_t idx, std::uint32_t len);
  /// The page was reclaimed (valid count hit zero, GC, or eviction).
  void on_free(std::uint32_t idx);
  /// Recovery: adopt an extent whose tail/live census was rebuilt from the
  /// persistent old-page mappings. Restored extents stay closed — their true
  /// tail is a lower bound, so appends would risk overwriting a delta whose
  /// owner died with the crash; GC compacts them instead.
  void restore_page(std::uint32_t idx, std::uint32_t tail,
                    std::uint32_t live_bytes, std::uint32_t live_count);

  // -- Placement (the variable-size allocator) --------------------------------
  /// Best-fit-by-class: an open extent with at least `len` bytes of tail room,
  /// preferring the smallest size class that fits (leaves big slack intact for
  /// big deltas). Returns kNone if nothing fits.
  std::uint32_t find_open(std::uint32_t len) const;

  // -- GC victim selection ----------------------------------------------------
  /// Extents whose dead bytes are >= min_dead_ratio * kPageSize and that still
  /// hold at least one live delta (fully dead pages free themselves on the
  /// spot), ordered most-dead-first (ties by index for determinism).
  std::vector<std::uint32_t> pick_victims(double min_dead_ratio,
                                          std::size_t max_victims) const;

  // -- Introspection ----------------------------------------------------------
  bool tracked(std::uint32_t idx) const {
    return idx < extents_.size() && extents_[idx].active;
  }
  const Extent& extent(std::uint32_t idx) const { return extents_[idx]; }
  std::uint64_t pages() const { return active_pages_; }
  std::uint64_t live_bytes() const { return total_live_; }
  std::uint64_t dead_bytes() const { return total_dead_; }
  std::uint64_t open_pages() const { return open_pages_; }

 private:
  static int class_of(std::uint32_t bytes);
  void bin_insert(std::uint32_t idx);
  void bin_remove(std::uint32_t idx);
  void rebin(std::uint32_t idx);

  std::vector<Extent> extents_;
  std::array<std::vector<std::uint32_t>, kNumClasses> bins_;
  std::uint64_t active_pages_ = 0;
  std::uint64_t open_pages_ = 0;
  std::uint64_t total_live_ = 0;
  std::uint64_t total_dead_ = 0;
};

}  // namespace kdd
