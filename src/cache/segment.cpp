#include "cache/segment.hpp"

#include <cstring>

#include "common/check.hpp"

namespace kdd {

namespace {

// Header page layout (little-endian):
//   [ 0,  8)  magic "KDDSEG01"
//   [ 8, 16)  segment id (monotonic)
//   [16, 20)  payload entry count
//   [20, 24)  reserved (zero)
//   [24, 32)  payload CRC: FNV-1a 64 over the payload pages, in list order
//   [32, 40)  header CRC: FNV-1a 64 over [0,32) and the entry list
//   [40, 40+8*count)  target SSD LBAs, in write order
// Both CRCs live in the first sector, so a torn header (sector prefix of the
// new header + stale tail) always fails its own CRC.

void put_u32(std::uint8_t* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u64(std::uint8_t* p, std::uint64_t v) { std::memcpy(p, &v, 8); }
std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

SegmentStager::SegmentStager(const SegmentConfig& config, bool counter_mode)
    : config_(config), counter_mode_(counter_mode) {
  KDD_CHECK(config_.segment_pages > 0);
  KDD_CHECK(config_.segment_pages <= kMaxEntries);
  KDD_CHECK(config_.ring_pages >= 2);  // open header never overwrites sealed
  entries_.reserve(config_.segment_pages);
}

std::uint64_t SegmentStager::fnv1a(std::uint64_t h,
                                   std::span<const std::uint8_t> bytes) {
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

bool SegmentStager::stage(Lba ssd_lba, std::span<const std::uint8_t> data) {
  KDD_CHECK(counter_mode_ ? data.empty() : data.size() == kPageSize);
  const auto it = index_.find(ssd_lba);
  if (it != index_.end()) {
    Entry& e = entries_[it->second];
    if (e.dead) {
      e.dead = false;
      ++live_;
    }
    if (!counter_mode_) {
      if (e.data.empty()) e.data = make_page();
      std::memcpy(e.data.data(), data.data(), kPageSize);
    }
  } else {
    Entry e;
    e.lba = ssd_lba;
    if (!counter_mode_) {
      e.data = make_page();
      std::memcpy(e.data.data(), data.data(), kPageSize);
    }
    index_[ssd_lba] = entries_.size();
    entries_.push_back(std::move(e));
    ++live_;
  }
  return full();
}

bool SegmentStager::full() const {
  return live_ >= config_.segment_pages || entries_.size() >= kMaxEntries;
}

bool SegmentStager::pending(Lba ssd_lba) const {
  const auto it = index_.find(ssd_lba);
  return it != index_.end() && !entries_[it->second].dead;
}

bool SegmentStager::read_pending(Lba ssd_lba, std::span<std::uint8_t> out) const {
  const auto it = index_.find(ssd_lba);
  if (it == index_.end()) return false;
  const Entry& e = entries_[it->second];
  if (e.dead || e.data.empty()) return false;
  KDD_CHECK(out.size() == kPageSize);
  std::memcpy(out.data(), e.data.data(), kPageSize);
  return true;
}

void SegmentStager::drop(Lba ssd_lba) {
  const auto it = index_.find(ssd_lba);
  if (it == index_.end()) return;
  Entry& e = entries_[it->second];
  if (!e.dead) {
    e.dead = true;
    KDD_DCHECK(live_ > 0);
    --live_;
  }
}

std::vector<Lba> SegmentStager::live_lbas() const {
  std::vector<Lba> out;
  out.reserve(live_);
  for (const Entry& e : entries_) {
    if (!e.dead) out.push_back(e.lba);
  }
  return out;
}

std::vector<PageWrite> SegmentStager::build_seal(Page* header) const {
  KDD_CHECK(header != nullptr);
  KDD_CHECK(live_ > 0);
  if (header->size() != kPageSize) *header = make_page();
  std::uint8_t* h = header->data();
  std::memset(h, 0, kPageSize);

  std::vector<PageWrite> batch;
  batch.reserve(live_ + 1);
  batch.push_back({header_slot(), {h, kPageSize}});  // header FIRST

  std::uint64_t payload_crc = kFnvSeed;
  std::uint32_t count = 0;
  for (const Entry& e : entries_) {
    if (e.dead) continue;
    put_u64(h + kHeaderFixedBytes + 8ull * count, e.lba);
    ++count;
    if (!e.data.empty()) {
      payload_crc = fnv1a(payload_crc, e.data);
      batch.push_back({e.lba, {e.data.data(), kPageSize}});
    } else {
      batch.push_back({e.lba, {}});
    }
  }
  put_u64(h + 0, kMagic);
  put_u64(h + 8, id_);
  put_u32(h + 16, count);
  put_u64(h + 24, counter_mode_ ? 0 : payload_crc);
  std::uint64_t header_crc = fnv1a(kFnvSeed, {h, 32});
  header_crc = fnv1a(header_crc, {h + kHeaderFixedBytes, 8ull * count});
  put_u64(h + 32, header_crc);
  return batch;
}

void SegmentStager::finish_seal() {
  entries_.clear();
  index_.clear();
  live_ = 0;
  ++id_;
}

void SegmentStager::abandon() {
  entries_.clear();
  index_.clear();
  live_ = 0;
}

bool SegmentStager::parse_header(std::span<const std::uint8_t> page,
                                 std::uint64_t* id, std::vector<Lba>* lbas,
                                 std::uint64_t* payload_crc) {
  if (page.size() != kPageSize) return false;
  const std::uint8_t* h = page.data();
  if (get_u64(h) != kMagic) return false;
  const std::uint32_t count = get_u32(h + 16);
  if (count == 0 || count > kMaxEntries) return false;
  std::uint64_t crc = fnv1a(kFnvSeed, {h, 32});
  crc = fnv1a(crc, {h + kHeaderFixedBytes, 8ull * count});
  if (crc != get_u64(h + 32)) return false;
  if (id) *id = get_u64(h + 8);
  if (payload_crc) *payload_crc = get_u64(h + 24);
  if (lbas) {
    lbas->clear();
    lbas->reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      lbas->push_back(get_u64(h + kHeaderFixedBytes + 8ull * i));
    }
  }
  return true;
}

}  // namespace kdd
