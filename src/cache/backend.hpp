// Data-plane seams that let every cache policy run in two modes with one
// implementation of its management logic:
//
//  * counter mode — the paper's Section IV-A methodology: no page contents,
//    only address streams; SSD writes and disk I/Os are counted and delta
//    sizes are drawn from a Gaussian sampler.
//  * prototype mode — Section IV-B: real bytes flow through a real SsdModel
//    and RaidArray with real delta compression, so correctness (parity,
//    recovery) is verifiable end-to-end.
//
// CacheSsd fronts the cache device; RaidBackend fronts the primary storage.
// Both record DeviceOps into the caller's IoPlan so the discrete-event
// simulator can time either mode.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_set>

#include "blockdev/fault_device.hpp"
#include "blockdev/retry.hpp"
#include "blockdev/ssd_model.hpp"
#include "cache/cache_stats.hpp"
#include "cache/segment.hpp"
#include "raid/io_plan.hpp"
#include "raid/raid_array.hpp"

namespace kdd {

/// The SSD used as cache. Cache data pages live at SSD LBA
/// [metadata_pages, metadata_pages + cache_pages); the metadata partition
/// occupies [0, metadata_pages) ("a fixed partition in the beginning of the
/// SSD", Section III-A).
class CacheSsd {
 public:
  /// Counter mode.
  CacheSsd(std::uint64_t metadata_pages, std::uint64_t cache_pages);
  /// Prototype mode: wraps a real SSD (not owned) whose logical capacity
  /// must be >= metadata_pages + cache_pages.
  CacheSsd(std::uint64_t metadata_pages, std::uint64_t cache_pages, SsdModel* ssd);

  std::uint64_t cache_pages() const { return cache_pages_; }
  std::uint64_t metadata_pages() const { return metadata_pages_; }
  bool real() const { return ssd_ != nullptr; }
  SsdModel* device() { return ssd_; }

  /// Fault-injection decorator all prototype-mode I/O flows through
  /// (null in counter mode). Latent sector errors, transients, torn writes
  /// and bit rot on the cache device are injected here.
  FaultInjectingDevice* faults() { return fault_dev_.get(); }

  /// Swaps in a fresh cache device AND forgets the decorator's per-page fault
  /// state (checksums/latent errors belong to the old media).
  void replace_device();

  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }

  /// Reads cache data page `idx`; `out` may be empty in counter mode.
  IoStatus read_data(std::uint64_t idx, std::span<std::uint8_t> out, IoPlan* plan);

  /// Writes cache data page `idx`; `data` may be empty in counter mode.
  IoStatus write_data(std::uint64_t idx, SsdWriteKind kind,
                      std::span<const std::uint8_t> data, IoPlan* plan);

  /// Releases cache data page `idx` (TRIM to the FTL in prototype mode).
  void trim_data(std::uint64_t idx);

  /// Reads/writes metadata partition page `slot` (0-based within partition).
  IoStatus read_metadata(std::uint64_t slot, std::span<std::uint8_t> out, IoPlan* plan);
  IoStatus write_metadata(std::uint64_t slot, std::span<const std::uint8_t> data,
                          IoPlan* plan);

  /// Per-kind write counters (pages) and total reads.
  const std::uint64_t* writes_by_kind() const { return writes_by_kind_; }
  std::uint64_t total_writes() const;
  std::uint64_t total_reads() const { return reads_; }

  /// Mirrors counters into `stats` (the policy owns aggregated stats).
  void export_stats(CacheStats& stats) const;

  // ---- Log-structured segment staging ---------------------------------------

  /// Enables segment staging: committed data/metadata page writes accumulate
  /// in a SegmentStager and reach the device as ONE vectored sequential write
  /// per sealed segment (header + payload, header first). `nv_segment_seq`
  /// is the NVRAM-resident open-segment id that anchors crash recovery (may
  /// be null in counter mode). Staging starts *inactive* so recovery I/O
  /// bypasses it; call activate_segment_staging() once the cache state is
  /// consistent.
  void enable_segment_staging(const SegmentConfig& config,
                              std::uint64_t* nv_segment_seq);
  void activate_segment_staging();
  bool segment_staging_active() const { return staging_live_; }
  SegmentStager* stager() { return stager_.get(); }
  const SegmentStats& segment_stats() const { return seg_stats_; }

  /// Host write commands issued to the SSD (direct page writes count one
  /// each; a sealed segment counts one for the whole batch). With
  /// pages_committed() this yields the SSD-writes-per-committed-page gauge.
  std::uint64_t write_ops() const { return write_ops_; }
  std::uint64_t pages_committed() const { return pages_committed_; }

  /// Seals and flushes the open segment. Barrier call sites: flush, quiesce,
  /// rebuild stripe windows, failover. No-op when staging is off or empty.
  IoStatus force_seal(IoPlan* plan);

  /// Crash recovery for the in-flight segment (prototype mode; call BEFORE
  /// metadata-log replay). Accepts the open segment when its header and
  /// whole-segment payload CRC prove it fully persisted; otherwise marks
  /// exactly the pages its header lists as unreadable so the normal recovery
  /// audit retires or heals them, and tombstones the header slot.
  void recover_staging();

 private:
  IoStatus do_read(Lba ssd_lba, std::span<std::uint8_t> out, IoPlan* plan);
  IoStatus do_write(Lba ssd_lba, std::span<const std::uint8_t> data, IoPlan* plan);
  IoStatus seal_segment(IoPlan* plan, bool forced);
  void update_segment_gauges() const;

  std::uint64_t metadata_pages_;
  std::uint64_t cache_pages_;
  SsdModel* ssd_ = nullptr;  ///< null in counter mode
  std::unique_ptr<FaultInjectingDevice> fault_dev_;  ///< wraps ssd_ when real
  RetryPolicy retry_policy_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_by_kind_[kNumSsdWriteKinds] = {};
  Page scratch_;  ///< zero page used when counter-mode callers pass no data

  std::unique_ptr<SegmentStager> stager_;  ///< null until staging enabled
  SegmentStats seg_stats_;
  std::uint64_t* nv_segment_seq_ = nullptr;  ///< NVRAM open-segment id
  bool staging_live_ = false;  ///< writes intercepted (post-recovery)
  std::uint64_t write_ops_ = 0;
  std::uint64_t pages_committed_ = 0;
};

/// The primary storage. In counter mode it tracks stale parity groups and
/// I/O counts through the layout only; in prototype mode it forwards to a
/// real RaidArray.
class RaidBackend {
 public:
  /// Counter mode.
  explicit RaidBackend(const RaidGeometry& geo);
  /// Prototype mode (array not owned).
  explicit RaidBackend(RaidArray* array);

  const RaidLayout& layout() const { return layout_; }
  bool real() const { return array_ != nullptr; }
  RaidArray* array() { return array_; }

  IoStatus read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan);
  IoStatus write_page(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan);
  IoStatus write_page_nopar(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan);

  /// Full-stripe write: all data members of group `g` at once, parity
  /// computed without any read. `data` entries may be empty in counter mode.
  IoStatus write_group(GroupId g, std::span<const Page> data, IoPlan* plan);

  /// Deferred parity update, RMW flavour. In counter mode only the plan/count
  /// matter; in prototype mode `deltas` carries the real XOR diffs. With
  /// finalize == false the group stays marked stale (partial fix).
  IoStatus update_parity_rmw(GroupId g, std::span<const GroupDelta> deltas,
                             IoPlan* plan, bool finalize = true);

  /// Batched destage (see RaidArray::update_parity_rmw_batch): one RMW-style
  /// parity update per entry, caller-ordered, per-group failure reporting.
  /// Counter mode charges one parity read + write per parity device per
  /// group, exactly like N update_parity_rmw calls would.
  IoStatus update_parity_rmw_batch(std::span<const GroupParityUpdate> updates,
                                   IoPlan* plan,
                                   std::vector<GroupId>* failed = nullptr);

  /// Deferred parity update, reconstruct-write flavour: all data members are
  /// cache-resident, so no disk reads are needed. `current_data` may be empty
  /// in counter mode.
  IoStatus update_parity_reconstruct_cached(GroupId g,
                                            std::span<const Page* const> current_data,
                                            IoPlan* plan);

  bool group_stale(GroupId g) const;
  std::uint64_t stale_group_count() const;

  std::uint64_t disk_reads() const { return disk_reads_; }
  std::uint64_t disk_writes() const { return disk_writes_; }

 private:
  void plan_rmw(GroupId g, Lba lba, IoPlan* plan);

  RaidLayout layout_;
  RaidArray* array_ = nullptr;
  std::unordered_set<GroupId> counter_stale_;  ///< counter mode only
  std::uint64_t disk_reads_ = 0;
  std::uint64_t disk_writes_ = 0;
};

}  // namespace kdd
