#include "cache/dez_space.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kdd {

void DezSpace::reset(std::uint64_t pages) {
  extents_.assign(pages, Extent{});
  for (auto& bin : bins_) bin.clear();
  active_pages_ = open_pages_ = 0;
  total_live_ = total_dead_ = 0;
}

void DezSpace::clear() {
  const std::size_t n = extents_.size();
  extents_.assign(n, Extent{});
  for (auto& bin : bins_) bin.clear();
  active_pages_ = open_pages_ = 0;
  total_live_ = total_dead_ = 0;
}

int DezSpace::class_of(std::uint32_t bytes) {
  if (bytes < kGrain) return -1;
  int c = 0;
  while (c + 1 < kNumClasses && bytes >= (kGrain << (c + 1))) ++c;
  return c;
}

void DezSpace::bin_insert(std::uint32_t idx) {
  Extent& e = extents_[idx];
  const int c = class_of(e.remaining());
  if (c < 0) {
    e.bin = -1;
    return;
  }
  e.bin = static_cast<std::int8_t>(c);
  e.bin_pos = static_cast<std::uint32_t>(bins_[static_cast<std::size_t>(c)].size());
  bins_[static_cast<std::size_t>(c)].push_back(idx);
}

void DezSpace::bin_remove(std::uint32_t idx) {
  Extent& e = extents_[idx];
  if (e.bin < 0) return;
  auto& bin = bins_[static_cast<std::size_t>(e.bin)];
  const std::uint32_t last = bin.back();
  bin[e.bin_pos] = last;
  extents_[last].bin_pos = e.bin_pos;
  bin.pop_back();
  e.bin = -1;
}

void DezSpace::rebin(std::uint32_t idx) {
  bin_remove(idx);
  if (extents_[idx].open) bin_insert(idx);
}

void DezSpace::open_page(std::uint32_t idx) {
  KDD_CHECK(idx < extents_.size());
  Extent& e = extents_[idx];
  KDD_CHECK(!e.active);
  e = Extent{};
  e.active = true;
  e.open = true;
  ++active_pages_;
  ++open_pages_;
  bin_insert(idx);
}

std::uint32_t DezSpace::append(std::uint32_t idx, std::uint32_t len) {
  Extent& e = extents_[idx];
  KDD_CHECK(e.active && e.open);
  KDD_CHECK(e.tail + len <= kPageSize);
  const std::uint32_t off = e.tail;
  e.tail += len;
  e.live_bytes += len;
  ++e.live_count;
  total_live_ += len;
  rebin(idx);
  return off;
}

void DezSpace::close_page(std::uint32_t idx) {
  Extent& e = extents_[idx];
  if (!e.active || !e.open) return;
  e.open = false;
  --open_pages_;
  bin_remove(idx);
}

void DezSpace::on_dead(std::uint32_t idx, std::uint32_t len) {
  Extent& e = extents_[idx];
  KDD_CHECK(e.active);
  KDD_CHECK(e.live_bytes >= len && e.live_count > 0);
  e.live_bytes -= len;
  --e.live_count;
  total_live_ -= len;
  total_dead_ += len;
}

void DezSpace::on_free(std::uint32_t idx) {
  Extent& e = extents_[idx];
  KDD_CHECK(e.active);
  if (e.open) {
    e.open = false;
    --open_pages_;
  }
  bin_remove(idx);
  total_live_ -= e.live_bytes;
  total_dead_ -= e.dead_bytes();
  --active_pages_;
  e = Extent{};
}

void DezSpace::restore_page(std::uint32_t idx, std::uint32_t tail,
                            std::uint32_t live_bytes, std::uint32_t live_count) {
  KDD_CHECK(idx < extents_.size());
  Extent& e = extents_[idx];
  KDD_CHECK(!e.active);
  KDD_CHECK(live_bytes <= tail && tail <= kPageSize);
  e = Extent{};
  e.active = true;
  e.open = false;
  e.tail = tail;
  e.live_bytes = live_bytes;
  e.live_count = live_count;
  ++active_pages_;
  total_live_ += live_bytes;
  total_dead_ += tail - live_bytes;
}

std::uint32_t DezSpace::find_open(std::uint32_t len) const {
  if (len == 0 || len > kPageSize) return kNone;
  // Classes below first_sure may contain members that fit (remaining is only
  // bounded below by the class base); scan those members, smallest class
  // first, before falling back to any member of a guaranteed class.
  int first_sure = 0;
  while (first_sure < kNumClasses &&
         (kGrain << first_sure) < len) {
    ++first_sure;
  }
  const int probe = class_of(len);
  if (probe >= 0 && probe < first_sure) {
    for (const std::uint32_t idx : bins_[static_cast<std::size_t>(probe)]) {
      if (extents_[idx].remaining() >= len) return idx;
    }
  }
  for (int c = first_sure; c < kNumClasses; ++c) {
    if (!bins_[static_cast<std::size_t>(c)].empty()) {
      return bins_[static_cast<std::size_t>(c)].front();
    }
  }
  return kNone;
}

std::vector<std::uint32_t> DezSpace::pick_victims(double min_dead_ratio,
                                                  std::size_t max_victims) const {
  std::vector<std::uint32_t> victims;
  if (max_victims == 0) return victims;
  const auto threshold = static_cast<std::uint32_t>(
      min_dead_ratio * static_cast<double>(kPageSize));
  for (std::uint32_t idx = 0; idx < extents_.size(); ++idx) {
    const Extent& e = extents_[idx];
    if (e.active && e.live_count > 0 && e.dead_bytes() >= threshold) {
      victims.push_back(idx);
    }
  }
  std::sort(victims.begin(), victims.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const std::uint32_t da = extents_[a].dead_bytes();
              const std::uint32_t db = extents_[b].dead_bytes();
              return da != db ? da > db : a < b;
            });
  if (victims.size() > max_victims) victims.resize(max_victims);
  return victims;
}

}  // namespace kdd
