// Cache statistics: hit ratios and the SSD write-traffic breakdown that the
// paper's Figures 4-8 and 11 report.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace kdd {

/// Why a page was written to the SSD. The sum over kinds is the cache write
/// traffic; the paper's lifetime argument is that KDD shrinks kDeltaCommit +
/// kWriteUpdate + kMetadata relative to WT/LeavO.
enum class SsdWriteKind : std::uint8_t {
  kReadFill,     ///< allocation on a read miss
  kWriteAlloc,   ///< allocation on a write miss
  kWriteUpdate,  ///< full-page update of an already-cached page (WT/LeavO)
  kDeltaCommit,  ///< packed delta page committed to the DEZ (KDD)
  kMetadata,     ///< persistent cache metadata
};
inline constexpr int kNumSsdWriteKinds = 5;

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t write_bypasses = 0;  ///< writes that could not be cached

  std::uint64_t ssd_reads = 0;
  std::uint64_t ssd_writes[kNumSsdWriteKinds] = {};

  std::uint64_t disk_reads = 0;   ///< RAID device page reads
  std::uint64_t disk_writes = 0;  ///< RAID device page writes

  std::uint64_t cleanings = 0;          ///< cleaning passes run
  std::uint64_t groups_cleaned = 0;     ///< parity groups brought up to date
  std::uint64_t log_gc_passes = 0;      ///< metadata-log garbage collections

  std::uint64_t total_ssd_writes() const {
    std::uint64_t n = 0;
    for (std::uint64_t w : ssd_writes) n += w;
    return n;
  }
  std::uint64_t metadata_ssd_writes() const {
    return ssd_writes[static_cast<int>(SsdWriteKind::kMetadata)];
  }
  std::uint64_t write_traffic_bytes() const { return total_ssd_writes() * kPageSize; }

  std::uint64_t requests() const {
    return read_hits + read_misses + write_hits + write_misses + write_bypasses;
  }
  /// Overall hit ratio as the paper reports it (reads + writes).
  double hit_ratio() const {
    const std::uint64_t total = requests();
    return total ? static_cast<double>(read_hits + write_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }
  double read_hit_ratio() const {
    const std::uint64_t total = read_hits + read_misses;
    return total ? static_cast<double>(read_hits) / static_cast<double>(total) : 0.0;
  }
};

}  // namespace kdd
