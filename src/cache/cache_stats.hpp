// Cache statistics: hit ratios and the SSD write-traffic breakdown that the
// paper's Figures 4-8 and 11 report.
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace kdd {

/// Why a page was written to the SSD. The sum over kinds is the cache write
/// traffic; the paper's lifetime argument is that KDD shrinks kDeltaCommit +
/// kWriteUpdate + kMetadata relative to WT/LeavO.
enum class SsdWriteKind : std::uint8_t {
  kReadFill,     ///< allocation on a read miss
  kWriteAlloc,   ///< allocation on a write miss
  kWriteUpdate,  ///< full-page update of an already-cached page (WT/LeavO)
  kDeltaCommit,  ///< packed delta page committed to the DEZ (KDD)
  kMetadata,     ///< persistent cache metadata
  kGcRelocate,   ///< live deltas rewritten by the delta-zone GC/defrag (KDD)
};
inline constexpr int kNumSsdWriteKinds = 6;

/// Stable lower_snake names for the kinds ("read_fill", ...). Used as metric
/// labels and JSONL field suffixes, so renames are schema changes.
inline const char* ssd_write_kind_name(SsdWriteKind k) {
  switch (k) {
    case SsdWriteKind::kReadFill: return "read_fill";
    case SsdWriteKind::kWriteAlloc: return "write_alloc";
    case SsdWriteKind::kWriteUpdate: return "write_update";
    case SsdWriteKind::kDeltaCommit: return "delta_commit";
    case SsdWriteKind::kMetadata: return "metadata";
    case SsdWriteKind::kGcRelocate: return "gc_relocate";
  }
  return "?";
}

struct CacheStats {
  std::uint64_t read_hits = 0;
  std::uint64_t read_misses = 0;
  std::uint64_t write_hits = 0;
  std::uint64_t write_misses = 0;
  std::uint64_t write_bypasses = 0;  ///< writes that could not be cached

  std::uint64_t ssd_reads = 0;
  std::uint64_t ssd_writes[kNumSsdWriteKinds] = {};

  std::uint64_t disk_reads = 0;   ///< RAID device page reads
  std::uint64_t disk_writes = 0;  ///< RAID device page writes

  std::uint64_t cleanings = 0;          ///< cleaning passes run
  std::uint64_t groups_cleaned = 0;     ///< parity groups brought up to date
  std::uint64_t log_gc_passes = 0;      ///< metadata-log garbage collections

  /// Element-wise sum: every field of `other` is added to this. Used to
  /// aggregate ConcurrentCache's per-stripe shard stats into one view
  /// without holding the policy mutex while shards keep recording.
  void merge(const CacheStats& other) {
    read_hits += other.read_hits;
    read_misses += other.read_misses;
    write_hits += other.write_hits;
    write_misses += other.write_misses;
    write_bypasses += other.write_bypasses;
    ssd_reads += other.ssd_reads;
    for (int k = 0; k < kNumSsdWriteKinds; ++k) ssd_writes[k] += other.ssd_writes[k];
    disk_reads += other.disk_reads;
    disk_writes += other.disk_writes;
    cleanings += other.cleanings;
    groups_cleaned += other.groups_cleaned;
    log_gc_passes += other.log_gc_passes;
  }

  std::uint64_t total_ssd_writes() const {
    std::uint64_t n = 0;
    for (std::uint64_t w : ssd_writes) n += w;
    return n;
  }
  std::uint64_t metadata_ssd_writes() const {
    return ssd_writes[static_cast<int>(SsdWriteKind::kMetadata)];
  }
  std::uint64_t write_traffic_bytes() const { return total_ssd_writes() * kPageSize; }

  std::uint64_t requests() const {
    return read_hits + read_misses + write_hits + write_misses + write_bypasses;
  }
  /// Overall hit ratio as the paper reports it (reads + writes).
  double hit_ratio() const {
    const std::uint64_t total = requests();
    return total ? static_cast<double>(read_hits + write_hits) /
                       static_cast<double>(total)
                 : 0.0;
  }
  double read_hit_ratio() const {
    const std::uint64_t total = read_hits + read_misses;
    return total ? static_cast<double>(read_hits) / static_cast<double>(total) : 0.0;
  }
};

}  // namespace kdd
