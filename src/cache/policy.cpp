#include "cache/policy.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kdd {

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

CacheLayoutPlan plan_cache_layout(const PolicyConfig& config, bool needs_metadata) {
  CacheLayoutPlan plan;
  if (needs_metadata) {
    const auto by_fraction = static_cast<std::uint64_t>(
        config.metadata_fraction * static_cast<double>(config.ssd_pages) + 0.5);
    // The partition must be able to hold one live entry per cache slot with
    // GC slack, or the circular log livelocks (Section III-C notes the
    // trade-off). With 17 B checksummed entries (240 per 4 KiB page) and a
    // 0.9 GC threshold the floor works out to ~0.5 % of the SSD; smaller
    // requested fractions are clamped up to it.
    const std::uint64_t floor_pages = config.ssd_pages / 200 + 8;
    plan.metadata_pages = std::max<std::uint64_t>({by_fraction, floor_pages, 4});
  }
  if (config.segment_staging && needs_metadata) {
    // Header ring for the segment stager: >= 2 slots so the open segment's
    // header never overwrites the last sealed one; 4 gives headroom for
    // tombstoned slots after crash recovery.
    plan.segment_ring_pages = 4;
  }
  KDD_CHECK(config.ssd_pages >
            plan.metadata_pages + plan.segment_ring_pages + config.ways);
  plan.cache_pages =
      (config.ssd_pages - plan.metadata_pages - plan.segment_ring_pages) /
      config.ways * config.ways;
  return plan;
}

BlockCacheBase::BlockCacheBase(const PolicyConfig& config, const RaidGeometry& geo,
                               std::uint64_t metadata_pages, std::uint64_t cache_pages)
    : config_(config),
      sets_(cache_pages, config.ways),
      ssd_(metadata_pages, cache_pages),
      raid_(geo) {}

BlockCacheBase::BlockCacheBase(const PolicyConfig& config, RaidArray* array,
                               SsdModel* ssd, std::uint64_t metadata_pages,
                               std::uint64_t cache_pages)
    : config_(config),
      sets_(cache_pages, config.ways),
      ssd_(metadata_pages, cache_pages, ssd),
      raid_(array) {}

CacheStats BlockCacheBase::stats() const {
  CacheStats s = stats_;
  ssd_.export_stats(s);
  s.disk_reads = raid_.disk_reads();
  s.disk_writes = raid_.disk_writes();
  return s;
}

std::uint32_t BlockCacheBase::set_for(Lba lba) const {
  const GroupId g = raid_.layout().group_of(lba);
  return static_cast<std::uint32_t>(mix64(g) % sets_.num_sets());
}

std::uint32_t BlockCacheBase::evict_lru_clean(std::uint32_t set) {
  const std::uint32_t victim = sets_.lru_tail(set);
  if (victim == CacheSets::kNone) return CacheSets::kNone;
  KDD_DCHECK(sets_.slot(victim).state == PageState::kClean);
  on_evict_slot(victim);
  ssd_.trim_data(victim);
  sets_.reset_slot(victim);
  return victim;
}

}  // namespace kdd
