#include "cache/sets.hpp"

#include "common/check.hpp"

namespace kdd {

CacheSets::CacheSets(std::uint64_t pages, std::uint32_t ways) : ways_(ways) {
  KDD_CHECK(ways_ > 0);
  KDD_CHECK(pages >= ways_);
  num_sets_ = static_cast<std::uint32_t>(pages / ways_);
  KDD_CHECK(num_sets_ > 0);
  slots_.resize(static_cast<std::size_t>(num_sets_) * ways_);
  lru_head_.assign(num_sets_, kNone);
  lru_tail_.assign(num_sets_, kNone);
  free_count_.assign(num_sets_, ways_);
  dez_count_.assign(num_sets_, 0);
}

void CacheSets::set_state(std::uint32_t idx, PageState next) {
  CacheSlot& s = slots_[idx];
  const PageState prev = s.state;
  if (prev == next) return;
  const std::uint32_t set = set_of(idx);
  if (prev == PageState::kFree) {
    KDD_DCHECK(free_count_[set] > 0);
    --free_count_[set];
  }
  if (next == PageState::kFree) ++free_count_[set];
  if (prev == PageState::kDelta) {
    KDD_DCHECK(dez_count_[set] > 0);
    --dez_count_[set];
  }
  if (next == PageState::kDelta) ++dez_count_[set];
  if (prev == PageState::kClean) lru_remove(idx);
  s.state = next;
  if (next == PageState::kClean) lru_insert_head(idx);
}

std::uint32_t CacheSets::find_data(std::uint32_t set, Lba lba) const {
  const std::uint32_t base = set * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const CacheSlot& s = slots_[base + w];
    if (s.lba != lba) continue;
    if (s.state == PageState::kClean || s.state == PageState::kOld ||
        s.state == PageState::kNewVersion) {
      return base + w;
    }
  }
  return kNone;
}

std::uint32_t CacheSets::find_state(std::uint32_t set, Lba lba, PageState state) const {
  const std::uint32_t base = set * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    const CacheSlot& s = slots_[base + w];
    if (s.lba == lba && s.state == state) return base + w;
  }
  return kNone;
}

std::uint32_t CacheSets::find_free(std::uint32_t set) const {
  if (free_count_[set] == 0) return kNone;
  const std::uint32_t base = set * ways_;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (slots_[base + w].state == PageState::kFree) return base + w;
  }
  return kNone;
}

void CacheSets::lru_insert_head(std::uint32_t idx) {
  const std::uint32_t set = set_of(idx);
  CacheSlot& s = slots_[idx];
  s.lru_prev = kNone;
  s.lru_next = lru_head_[set];
  if (lru_head_[set] != kNone) slots_[lru_head_[set]].lru_prev = idx;
  lru_head_[set] = idx;
  if (lru_tail_[set] == kNone) lru_tail_[set] = idx;
}

void CacheSets::lru_remove(std::uint32_t idx) {
  const std::uint32_t set = set_of(idx);
  CacheSlot& s = slots_[idx];
  if (s.lru_prev != kNone) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else {
    lru_head_[set] = s.lru_next;
  }
  if (s.lru_next != kNone) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else {
    lru_tail_[set] = s.lru_prev;
  }
  s.lru_prev = s.lru_next = kNone;
}

void CacheSets::lru_touch(std::uint32_t idx) {
  KDD_DCHECK(slots_[idx].state == PageState::kClean);
  lru_remove(idx);
  lru_insert_head(idx);
}

void CacheSets::reset_slot(std::uint32_t idx) {
  set_state(idx, PageState::kFree);
  CacheSlot& s = slots_[idx];
  s.lba = kInvalidLba;
  s.dez_idx = kNone;
  s.dez_off = s.dez_len = 0;
  s.valid_count = 0;
  s.partner = kNone;
  // Note: home_log_page is intentionally preserved — the persistent free
  // entry for this slot stays live in the metadata log until GC rewrites or
  // supersedes it.
}

std::uint64_t CacheSets::count_state(PageState state) const {
  std::uint64_t n = 0;
  for (const CacheSlot& s : slots_) {
    if (s.state == state) ++n;
  }
  return n;
}

}  // namespace kdd
