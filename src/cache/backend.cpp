#include "cache/backend.hpp"

#include "common/check.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kdd {

namespace {

/// Cached metric handles for the data-plane leaves, registered once in the
/// global registry (hot-path cost per I/O: one relaxed fetch_add each).
struct BackendMetrics {
  obs::Counter retry_attempts;   ///< extra attempts beyond the first
  obs::Counter retry_exhausted;  ///< ops that failed after all retries
  obs::Counter ssd_io_errors;    ///< non-OK statuses surfaced to the cache
};

BackendMetrics& backend_metrics() {
  static BackendMetrics* m = [] {
    auto* bm = new BackendMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    bm->retry_attempts = obs::Counter(&reg, "kdd_ssd_retry_attempts_total");
    bm->retry_exhausted = obs::Counter(&reg, "kdd_ssd_retry_exhausted_total");
    bm->ssd_io_errors = obs::Counter(&reg, "kdd_ssd_io_errors_total");
    return bm;
  }();
  return *m;
}

}  // namespace

// ---------------------------------------------------------------------------
// CacheSsd
// ---------------------------------------------------------------------------

CacheSsd::CacheSsd(std::uint64_t metadata_pages, std::uint64_t cache_pages)
    : metadata_pages_(metadata_pages), cache_pages_(cache_pages) {
  KDD_CHECK(cache_pages_ > 0);
}

CacheSsd::CacheSsd(std::uint64_t metadata_pages, std::uint64_t cache_pages,
                   SsdModel* ssd)
    : metadata_pages_(metadata_pages), cache_pages_(cache_pages), ssd_(ssd) {
  KDD_CHECK(cache_pages_ > 0);
  KDD_CHECK(ssd_ != nullptr);
  KDD_CHECK(ssd_->num_pages() >= metadata_pages_ + cache_pages_);
  scratch_ = make_page();
  FaultConfig fc;
  fc.verify_reads = true;
  fc.seed = 0xc2b2ae3d27d4eb4full;  // distinct from the per-disk RAID seeds
  fault_dev_ = std::make_unique<FaultInjectingDevice>(ssd_, fc);
}

void CacheSsd::replace_device() {
  KDD_CHECK(ssd_ != nullptr);
  KDD_LOG(Info, "cache-ssd device replaced (endurance %.3f consumed)",
          ssd_->endurance_consumed());
  ssd_->replace();
  // Checksums and latent sector errors belong to the old media.
  fault_dev_->clear_faults();
}

IoStatus CacheSsd::do_read(Lba ssd_lba, std::span<std::uint8_t> out, IoPlan* plan) {
  ++reads_;
  if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kSsd, 0, ssd_lba, IoKind::kRead});
  if (ssd_ && !out.empty()) {
    const obs::SpanScope span(obs::Stage::kDevice);
    const RetryResult r = with_retry(
        [&] { return fault_dev_->read(ssd_lba, out); }, retry_policy_);
    if (plan) plan->add_retry_delay(r.backoff_us);
    if (r.attempts > 1) {
      backend_metrics().retry_attempts.inc(r.attempts - 1);
    }
    if (r.status != IoStatus::kOk) {
      backend_metrics().ssd_io_errors.inc();
      // kFailed here is a transient that never cleared (with_retry demotes).
      if (r.status == IoStatus::kFailed) backend_metrics().retry_exhausted.inc();
      KDD_LOG(Warn, "cache-ssd read failed lba=%llu status=%d attempts=%u",
              static_cast<unsigned long long>(ssd_lba),
              static_cast<int>(r.status), r.attempts);
    }
    return r.status;
  }
  return IoStatus::kOk;
}

IoStatus CacheSsd::do_write(Lba ssd_lba, std::span<const std::uint8_t> data,
                            IoPlan* plan) {
  if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kSsd, 0, ssd_lba, IoKind::kWrite});
  if (ssd_) {
    if (scratch_.empty()) scratch_ = make_page();
    const std::span<const std::uint8_t> payload =
        data.empty() ? std::span<const std::uint8_t>(scratch_) : data;
    const obs::SpanScope span(obs::Stage::kDevice);
    const RetryResult r = with_retry(
        [&] { return fault_dev_->write(ssd_lba, payload); }, retry_policy_);
    if (plan) plan->add_retry_delay(r.backoff_us);
    if (r.attempts > 1) {
      backend_metrics().retry_attempts.inc(r.attempts - 1);
    }
    if (r.status != IoStatus::kOk) {
      backend_metrics().ssd_io_errors.inc();
      // kFailed here is a transient that never cleared (with_retry demotes).
      if (r.status == IoStatus::kFailed) backend_metrics().retry_exhausted.inc();
      KDD_LOG(Warn, "cache-ssd write failed lba=%llu status=%d attempts=%u",
              static_cast<unsigned long long>(ssd_lba),
              static_cast<int>(r.status), r.attempts);
    }
    return r.status;
  }
  return IoStatus::kOk;
}

IoStatus CacheSsd::read_data(std::uint64_t idx, std::span<std::uint8_t> out,
                             IoPlan* plan) {
  KDD_DCHECK(idx < cache_pages_);
  return do_read(metadata_pages_ + idx, out, plan);
}

IoStatus CacheSsd::write_data(std::uint64_t idx, SsdWriteKind kind,
                              std::span<const std::uint8_t> data, IoPlan* plan) {
  KDD_DCHECK(idx < cache_pages_);
  ++writes_by_kind_[static_cast<int>(kind)];
  return do_write(metadata_pages_ + idx, data, plan);
}

void CacheSsd::trim_data(std::uint64_t idx) {
  KDD_DCHECK(idx < cache_pages_);
  if (ssd_) fault_dev_->trim(metadata_pages_ + idx);
}

IoStatus CacheSsd::read_metadata(std::uint64_t slot, std::span<std::uint8_t> out,
                                 IoPlan* plan) {
  KDD_DCHECK(slot < metadata_pages_);
  return do_read(slot, out, plan);
}

IoStatus CacheSsd::write_metadata(std::uint64_t slot,
                                  std::span<const std::uint8_t> data, IoPlan* plan) {
  KDD_DCHECK(slot < metadata_pages_);
  ++writes_by_kind_[static_cast<int>(SsdWriteKind::kMetadata)];
  return do_write(slot, data, plan);
}

std::uint64_t CacheSsd::total_writes() const {
  std::uint64_t n = 0;
  for (std::uint64_t w : writes_by_kind_) n += w;
  return n;
}

void CacheSsd::export_stats(CacheStats& stats) const {
  stats.ssd_reads = reads_;
  for (int k = 0; k < kNumSsdWriteKinds; ++k) stats.ssd_writes[k] = writes_by_kind_[k];
}

// ---------------------------------------------------------------------------
// RaidBackend
// ---------------------------------------------------------------------------

RaidBackend::RaidBackend(const RaidGeometry& geo) : layout_(geo) {}

RaidBackend::RaidBackend(RaidArray* array)
    : layout_(array->geometry()), array_(array) {
  KDD_CHECK(array_ != nullptr);
}

IoStatus RaidBackend::read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  ++disk_reads_;
  if (array_) return array_->read_page(lba, out, plan);
  if (plan) {
    const DiskAddr a = layout_.map(lba);
    plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
  }
  return IoStatus::kOk;
}

void RaidBackend::plan_rmw(GroupId g, Lba lba, IoPlan* plan) {
  // [read data, read P(, read Q)] -> [write data, write P(, write Q)]
  const DiskAddr a = layout_.map(lba);
  const DiskAddr pa = layout_.parity_addr(g);
  const std::size_t rd = plan->next_phase();
  plan->add(rd, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
  plan->add(rd, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
  if (layout_.geometry().level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    plan->add(rd, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
    plan->add(rd + 1, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
  }
  plan->add(rd + 1, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
  plan->add(rd + 1, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
}

IoStatus RaidBackend::write_page(Lba lba, std::span<const std::uint8_t> data,
                                 IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kRmw);
  const RaidGeometry& geo = layout_.geometry();
  const std::uint32_t parity = geo.parity_disks();
  disk_reads_ += parity ? 1 + parity : 0;  // old data + old parities
  disk_writes_ += 1 + parity;
  if (array_) {
    KDD_CHECK(!data.empty());
    return array_->write_page(lba, data, plan);
  }
  if (plan) {
    if (parity) {
      plan_rmw(layout_.group_of(lba), lba, plan);
    } else {
      const DiskAddr a = layout_.map(lba);
      plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::write_group(GroupId g, std::span<const Page> data, IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(data.size() == geo.data_disks());
  disk_writes_ += geo.data_disks() + geo.parity_disks();
  if (array_) return array_->write_group(g, data, plan);
  counter_stale_.erase(g);
  if (plan) {
    const std::size_t ph = plan->next_phase();
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      plan->add(ph, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
    }
    if (geo.parity_disks() > 0) {
      const DiskAddr pa = layout_.parity_addr(g);
      plan->add(ph, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
      if (geo.level == RaidLevel::kRaid6) {
        const DiskAddr qa = layout_.q_parity_addr(g);
        plan->add(ph, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::write_page_nopar(Lba lba, std::span<const std::uint8_t> data,
                                       IoPlan* plan) {
  ++disk_writes_;
  if (array_) {
    KDD_CHECK(!data.empty());
    return array_->write_page_nopar(lba, data, plan);
  }
  counter_stale_.insert(layout_.group_of(lba));
  if (plan) {
    const DiskAddr a = layout_.map(lba);
    plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::update_parity_rmw(GroupId g, std::span<const GroupDelta> deltas,
                                        IoPlan* plan, bool finalize) {
  const obs::SpanScope span(obs::Stage::kParity);
  const std::uint32_t parity = layout_.geometry().parity_disks();
  KDD_CHECK(parity > 0);
  disk_reads_ += parity;
  disk_writes_ += parity;
  if (array_) return array_->update_parity_rmw(g, deltas, plan, finalize);
  if (finalize) counter_stale_.erase(g);
  if (plan) {
    const DiskAddr pa = layout_.parity_addr(g);
    const std::size_t rd = plan->next_phase();
    plan->add(rd, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
    plan->add(rd + 1, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    if (layout_.geometry().level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      plan->add(rd, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
      plan->add(rd + 1, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::update_parity_rmw_batch(
    std::span<const GroupParityUpdate> updates, IoPlan* plan,
    std::vector<GroupId>* failed) {
  const obs::SpanScope span(obs::Stage::kParity);
  const std::uint32_t parity = layout_.geometry().parity_disks();
  KDD_CHECK(parity > 0);
  disk_reads_ += parity * updates.size();
  disk_writes_ += parity * updates.size();
  if (array_) return array_->update_parity_rmw_batch(updates, plan, failed);
  for (const GroupParityUpdate& up : updates) {
    if (up.finalize) counter_stale_.erase(up.group);
    if (plan) {
      const DiskAddr pa = layout_.parity_addr(up.group);
      const std::size_t rd = plan->next_phase();
      plan->add(rd, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
      plan->add(rd + 1, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
      if (layout_.geometry().level == RaidLevel::kRaid6) {
        const DiskAddr qa = layout_.q_parity_addr(up.group);
        plan->add(rd, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
        plan->add(rd + 1, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::update_parity_reconstruct_cached(
    GroupId g, std::span<const Page* const> current_data, IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kParity);
  const std::uint32_t parity = layout_.geometry().parity_disks();
  KDD_CHECK(parity > 0);
  disk_writes_ += parity;
  if (array_) {
    KDD_CHECK(current_data.size() == layout_.geometry().data_disks());
    return array_->update_parity_reconstruct(g, current_data, plan);
  }
  counter_stale_.erase(g);
  if (plan) {
    const DiskAddr pa = layout_.parity_addr(g);
    const std::size_t ph = plan->next_phase();
    plan->add(ph, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    if (layout_.geometry().level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      plan->add(ph, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

bool RaidBackend::group_stale(GroupId g) const {
  return array_ ? array_->group_stale(g) : counter_stale_.contains(g);
}

std::uint64_t RaidBackend::stale_group_count() const {
  return array_ ? array_->stale_group_count() : counter_stale_.size();
}

}  // namespace kdd
