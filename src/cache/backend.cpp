#include "cache/backend.hpp"

#include "common/check.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kdd {

namespace {

/// Cached metric handles for the data-plane leaves, registered once in the
/// global registry (hot-path cost per I/O: one relaxed fetch_add each).
struct BackendMetrics {
  obs::Counter retry_attempts;   ///< extra attempts beyond the first
  obs::Counter retry_exhausted;  ///< ops that failed after all retries
  obs::Counter ssd_io_errors;    ///< non-OK statuses surfaced to the cache
};

BackendMetrics& backend_metrics() {
  static BackendMetrics* m = [] {
    auto* bm = new BackendMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    bm->retry_attempts = obs::Counter(&reg, "kdd_ssd_retry_attempts_total");
    bm->retry_exhausted = obs::Counter(&reg, "kdd_ssd_retry_exhausted_total");
    bm->ssd_io_errors = obs::Counter(&reg, "kdd_ssd_io_errors_total");
    return bm;
  }();
  return *m;
}

/// Global-registry mirrors of SegmentStats plus two derived gauges; the
/// per-instance SegmentStats stays authoritative for tests.
struct SegmentMetrics {
  obs::Counter seals;
  obs::Counter forced_seals;
  obs::Counter pages_sealed;
  obs::Counter pages_staged;
  obs::Counter pages_coalesced;
  obs::Counter fallback_page_writes;
  obs::Counter lost_pages;
  obs::Counter recovered;
  obs::Counter discarded;
  obs::Counter discarded_pages;
  obs::Gauge fill_permille;          ///< open-segment fill ratio x1000
  obs::Gauge write_ops_per_kilopage; ///< SSD write commands per 1000 committed pages
};

SegmentMetrics& segment_metrics() {
  static SegmentMetrics* m = [] {
    auto* sm = new SegmentMetrics();
    obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
    sm->seals = obs::Counter(&reg, "kdd_segment_seals_total");
    sm->forced_seals = obs::Counter(&reg, "kdd_segment_forced_seals_total");
    sm->pages_sealed = obs::Counter(&reg, "kdd_segment_pages_sealed_total");
    sm->pages_staged = obs::Counter(&reg, "kdd_segment_pages_staged_total");
    sm->pages_coalesced = obs::Counter(&reg, "kdd_segment_pages_coalesced_total");
    sm->fallback_page_writes =
        obs::Counter(&reg, "kdd_segment_fallback_page_writes_total");
    sm->lost_pages = obs::Counter(&reg, "kdd_segment_lost_pages_total");
    sm->recovered = obs::Counter(&reg, "kdd_segment_recovered_total");
    sm->discarded = obs::Counter(&reg, "kdd_segment_discarded_total");
    sm->discarded_pages = obs::Counter(&reg, "kdd_segment_discarded_pages_total");
    sm->fill_permille = obs::Gauge(&reg, "kdd_segment_fill_permille");
    sm->write_ops_per_kilopage =
        obs::Gauge(&reg, "kdd_segment_write_ops_per_kilopage");
    return sm;
  }();
  return *m;
}

}  // namespace

// ---------------------------------------------------------------------------
// CacheSsd
// ---------------------------------------------------------------------------

CacheSsd::CacheSsd(std::uint64_t metadata_pages, std::uint64_t cache_pages)
    : metadata_pages_(metadata_pages), cache_pages_(cache_pages) {
  KDD_CHECK(cache_pages_ > 0);
}

CacheSsd::CacheSsd(std::uint64_t metadata_pages, std::uint64_t cache_pages,
                   SsdModel* ssd)
    : metadata_pages_(metadata_pages), cache_pages_(cache_pages), ssd_(ssd) {
  KDD_CHECK(cache_pages_ > 0);
  KDD_CHECK(ssd_ != nullptr);
  KDD_CHECK(ssd_->num_pages() >= metadata_pages_ + cache_pages_);
  scratch_ = make_page();
  FaultConfig fc;
  fc.verify_reads = true;
  fc.seed = 0xc2b2ae3d27d4eb4full;  // distinct from the per-disk RAID seeds
  fault_dev_ = std::make_unique<FaultInjectingDevice>(ssd_, fc);
}

void CacheSsd::replace_device() {
  KDD_CHECK(ssd_ != nullptr);
  KDD_LOG(Info, "cache-ssd device replaced (endurance %.3f consumed)",
          ssd_->endurance_consumed());
  ssd_->replace();
  // Checksums and latent sector errors belong to the old media.
  fault_dev_->clear_faults();
  // So do any pages staged in the open segment (the id stays monotonic).
  if (stager_) {
    stager_->abandon();
    update_segment_gauges();
  }
}

IoStatus CacheSsd::do_read(Lba ssd_lba, std::span<std::uint8_t> out, IoPlan* plan) {
  if (staging_live_ && stager_->pending(ssd_lba)) {
    // RAM hit on a page still in the open segment: no device op, no plan
    // entry — the not-yet-sealed copy IS the current contents. Counter-mode
    // entries carry no bytes, so only prototype mode copies them out.
    if (ssd_ && !out.empty()) KDD_CHECK(stager_->read_pending(ssd_lba, out));
    return IoStatus::kOk;
  }
  ++reads_;
  if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kSsd, 0, ssd_lba, IoKind::kRead});
  if (ssd_ && !out.empty()) {
    const obs::SpanScope span(obs::Stage::kDevice);
    const RetryResult r = with_retry(
        [&] { return fault_dev_->read(ssd_lba, out); }, retry_policy_);
    if (plan) plan->add_retry_delay(r.backoff_us);
    if (r.attempts > 1) {
      backend_metrics().retry_attempts.inc(r.attempts - 1);
    }
    if (r.status != IoStatus::kOk) {
      backend_metrics().ssd_io_errors.inc();
      // kFailed here is a transient that never cleared (with_retry demotes).
      if (r.status == IoStatus::kFailed) backend_metrics().retry_exhausted.inc();
      KDD_LOG(Warn, "cache-ssd read failed lba=%llu status=%d attempts=%u",
              static_cast<unsigned long long>(ssd_lba),
              static_cast<int>(r.status), r.attempts);
    }
    return r.status;
  }
  return IoStatus::kOk;
}

IoStatus CacheSsd::do_write(Lba ssd_lba, std::span<const std::uint8_t> data,
                            IoPlan* plan) {
  ++pages_committed_;
  if (staging_live_) {
    if (stager_->full()) {
      // Only possible when a prior seal could not drain (power rail down):
      // try again; if it still cannot, degrade to a direct write below so
      // the stager never grows past one segment.
      seal_segment(plan, /*forced=*/false);
    }
    if (!stager_->full()) {
      if (stager_->pending(ssd_lba)) {
        ++seg_stats_.pages_coalesced;
        segment_metrics().pages_coalesced.inc();
      }
      ++seg_stats_.pages_staged;
      segment_metrics().pages_staged.inc();
      // Counter mode (no device) stages addresses only, even when the
      // caller carries page bytes; prototype mode always stages a full
      // page, substituting scratch for byte-less commits.
      std::span<const std::uint8_t> payload =
          ssd_ ? data : std::span<const std::uint8_t>();
      if (ssd_ && payload.empty()) {
        if (scratch_.empty()) scratch_ = make_page();
        payload = scratch_;
      }
      const bool filled = stager_->stage(ssd_lba, payload);
      update_segment_gauges();
      if (filled) return seal_segment(plan, /*forced=*/false);
      return IoStatus::kOk;
    }
  }
  ++write_ops_;
  if (plan) plan->add(plan->next_phase(), {DeviceOp::Target::kSsd, 0, ssd_lba, IoKind::kWrite});
  if (ssd_) {
    if (scratch_.empty()) scratch_ = make_page();
    const std::span<const std::uint8_t> payload =
        data.empty() ? std::span<const std::uint8_t>(scratch_) : data;
    const obs::SpanScope span(obs::Stage::kDevice);
    const RetryResult r = with_retry(
        [&] { return fault_dev_->write(ssd_lba, payload); }, retry_policy_);
    if (plan) plan->add_retry_delay(r.backoff_us);
    if (r.attempts > 1) {
      backend_metrics().retry_attempts.inc(r.attempts - 1);
    }
    if (r.status != IoStatus::kOk) {
      backend_metrics().ssd_io_errors.inc();
      // kFailed here is a transient that never cleared (with_retry demotes).
      if (r.status == IoStatus::kFailed) backend_metrics().retry_exhausted.inc();
      KDD_LOG(Warn, "cache-ssd write failed lba=%llu status=%d attempts=%u",
              static_cast<unsigned long long>(ssd_lba),
              static_cast<int>(r.status), r.attempts);
    }
    return r.status;
  }
  return IoStatus::kOk;
}

IoStatus CacheSsd::read_data(std::uint64_t idx, std::span<std::uint8_t> out,
                             IoPlan* plan) {
  KDD_DCHECK(idx < cache_pages_);
  return do_read(metadata_pages_ + idx, out, plan);
}

IoStatus CacheSsd::write_data(std::uint64_t idx, SsdWriteKind kind,
                              std::span<const std::uint8_t> data, IoPlan* plan) {
  KDD_DCHECK(idx < cache_pages_);
  ++writes_by_kind_[static_cast<int>(kind)];
  return do_write(metadata_pages_ + idx, data, plan);
}

void CacheSsd::trim_data(std::uint64_t idx) {
  KDD_DCHECK(idx < cache_pages_);
  if (staging_live_) stager_->drop(metadata_pages_ + idx);
  if (ssd_) fault_dev_->trim(metadata_pages_ + idx);
}

IoStatus CacheSsd::read_metadata(std::uint64_t slot, std::span<std::uint8_t> out,
                                 IoPlan* plan) {
  KDD_DCHECK(slot < metadata_pages_);
  return do_read(slot, out, plan);
}

IoStatus CacheSsd::write_metadata(std::uint64_t slot,
                                  std::span<const std::uint8_t> data, IoPlan* plan) {
  KDD_DCHECK(slot < metadata_pages_);
  ++writes_by_kind_[static_cast<int>(SsdWriteKind::kMetadata)];
  return do_write(slot, data, plan);
}

std::uint64_t CacheSsd::total_writes() const {
  std::uint64_t n = 0;
  for (std::uint64_t w : writes_by_kind_) n += w;
  return n;
}

void CacheSsd::export_stats(CacheStats& stats) const {
  stats.ssd_reads = reads_;
  for (int k = 0; k < kNumSsdWriteKinds; ++k) stats.ssd_writes[k] = writes_by_kind_[k];
}

// ---------------------------------------------------------------------------
// Log-structured segment staging
// ---------------------------------------------------------------------------

void CacheSsd::enable_segment_staging(const SegmentConfig& config,
                                      std::uint64_t* nv_segment_seq) {
  KDD_CHECK(stager_ == nullptr);
  if (ssd_) {
    KDD_CHECK(ssd_->num_pages() >= config.ring_base + config.ring_pages);
  }
  stager_ = std::make_unique<SegmentStager>(config, /*counter_mode=*/ssd_ == nullptr);
  nv_segment_seq_ = nv_segment_seq;
  if (nv_segment_seq_) stager_->set_open_segment_id(*nv_segment_seq_);
}

void CacheSsd::activate_segment_staging() {
  KDD_CHECK(stager_ != nullptr);
  staging_live_ = true;
}

IoStatus CacheSsd::force_seal(IoPlan* plan) {
  if (!staging_live_ || stager_->empty()) return IoStatus::kOk;
  return seal_segment(plan, /*forced=*/true);
}

void CacheSsd::update_segment_gauges() const {
  const SegmentMetrics& sm = segment_metrics();
  sm.fill_permille.set(static_cast<std::int64_t>(
      stager_->live_pages() * 1000 / stager_->config().segment_pages));
  if (pages_committed_ > 0) {
    sm.write_ops_per_kilopage.set(
        static_cast<std::int64_t>(write_ops_ * 1000 / pages_committed_));
  }
}

IoStatus CacheSsd::seal_segment(IoPlan* plan, bool forced) {
  KDD_CHECK(stager_ != nullptr);
  if (stager_->empty()) return IoStatus::kOk;
  Page header;
  const std::vector<PageWrite> batch = stager_->build_seal(&header);
  const std::uint64_t payload_pages = batch.size() - 1;
  if (plan) {
    // One phase: the whole segment lands as one sequential burst.
    const std::size_t ph = plan->next_phase();
    for (const PageWrite& w : batch) {
      plan->add(ph, {DeviceOp::Target::kSsd, 0, w.page, IoKind::kWriteSeq});
    }
  }
  ++write_ops_;
  ++seg_stats_.write_ops;
  IoStatus st = IoStatus::kOk;
  std::vector<Lba> lost;
  if (ssd_) {
    const obs::SpanScope span(obs::Stage::kDevice);
    std::size_t done = 0;
    st = fault_dev_->write_multi(batch, &done);
    if (st != IoStatus::kOk && fault_dev_->powered() && !fault_dev_->failed()) {
      // The vector split on a transient: land the stragglers one page at a
      // time under the normal retry policy. Rewrites of already-durable
      // pages are idempotent, and replaying the batch in order keeps the
      // header-first contract intact throughout.
      st = IoStatus::kOk;
      for (const PageWrite& w : batch) {
        ++seg_stats_.fallback_page_writes;
        segment_metrics().fallback_page_writes.inc();
        const RetryResult r = with_retry(
            [&] { return fault_dev_->write(w.page, w.data); }, retry_policy_);
        if (plan) plan->add_retry_delay(r.backoff_us);
        if (r.attempts > 1) backend_metrics().retry_attempts.inc(r.attempts - 1);
        if (r.status != IoStatus::kOk) {
          backend_metrics().ssd_io_errors.inc();
          if (r.status == IoStatus::kFailed) backend_metrics().retry_exhausted.inc();
          st = r.status;
          if (w.page != batch.front().page) lost.push_back(w.page);
          if (!fault_dev_->powered() || fault_dev_->failed()) break;
        }
      }
    }
  }
  // Epoch rule: complete the seal (and bump the NVRAM segment id) only while
  // powered. After a mid-seal power cut the segment stays OPEN so recovery
  // examines its header slot and discards exactly what the header lists.
  const bool powered = !fault_dev_ || fault_dev_->powered();
  if (powered) {
    ++seg_stats_.seals;
    segment_metrics().seals.inc();
    if (forced) {
      ++seg_stats_.forced_seals;
      segment_metrics().forced_seals.inc();
    }
    seg_stats_.pages_sealed += payload_pages;
    segment_metrics().pages_sealed.inc(payload_pages);
    stager_->finish_seal();
    if (nv_segment_seq_) *nv_segment_seq_ = stager_->open_segment_id();
    for (const Lba p : lost) {
      // A payload page we could not land holds stale media contents; mark it
      // unreadable so every future read fails loudly (kMediaError) instead
      // of silently serving old bytes — the cache's existing degraded-read
      // fallbacks then retire or heal the slot.
      ++seg_stats_.lost_pages;
      segment_metrics().lost_pages.inc();
      fault_dev_->inject_media_error(p);
      KDD_LOG(Warn, "segment seal lost page %llu (marked unreadable)",
              static_cast<unsigned long long>(p));
    }
  }
  update_segment_gauges();
  return st;
}

void CacheSsd::recover_staging() {
  if (stager_ == nullptr || ssd_ == nullptr || nv_segment_seq_ == nullptr) return;
  const std::uint64_t seq = *nv_segment_seq_;
  stager_->set_open_segment_id(seq);
  const Lba slot = SegmentStager::header_slot_for(stager_->config(), seq);
  Page hdr = make_page();
  if (fault_dev_->read(slot, hdr) != IoStatus::kOk) return;
  std::uint64_t id = 0;
  std::vector<Lba> lbas;
  std::uint64_t payload_crc = 0;
  if (!SegmentStager::parse_header(hdr, &id, &lbas, &payload_crc) || id != seq) {
    // Garbage, a torn header, or a stale ring slot from an older epoch:
    // nothing of segment `seq` reached the media (header-first order), so
    // there is nothing to undo.
    return;
  }
  // The open segment's header persisted, so some payload prefix may have.
  // Validate the whole-segment CRC to tell "fully persisted" from "torn".
  Page buf = make_page();
  std::uint64_t crc = SegmentStager::kFnvSeed;
  bool intact = true;
  for (const Lba p : lbas) {
    if (fault_dev_->read(p, buf) != IoStatus::kOk) {
      intact = false;
      break;
    }
    crc = SegmentStager::fnv1a(crc, buf);
  }
  if (intact && crc == payload_crc) {
    // The cut landed after the last payload write: the segment is complete,
    // only the epoch bump was lost. Re-apply it.
    ++seg_stats_.recovered_segments;
    segment_metrics().recovered.inc();
    stager_->set_open_segment_id(seq + 1);
    *nv_segment_seq_ = seq + 1;
    KDD_LOG(Info, "segment recovery: segment %llu fully persisted (%zu pages)",
            static_cast<unsigned long long>(seq), lbas.size());
    return;
  }
  // Torn mid-segment: discard exactly the listed pages by marking them
  // unreadable. The metadata-log replay skips unreadable log pages and the
  // torn-page audit retires or heals unreadable data/delta slots — both
  // backed by the RAID members, which are always current before staging.
  ++seg_stats_.discarded_segments;
  segment_metrics().discarded.inc();
  for (const Lba p : lbas) {
    fault_dev_->inject_media_error(p);
    ++seg_stats_.discarded_pages;
    segment_metrics().discarded_pages.inc();
  }
  // Tombstone the ring slot so a second crash in this epoch's ring window
  // can never re-read the stale header and discard live pages again.
  if (scratch_.empty()) scratch_ = make_page();
  (void)fault_dev_->write(slot, scratch_);
  KDD_LOG(Warn,
          "segment recovery: segment %llu torn, discarded %zu pages exactly",
          static_cast<unsigned long long>(seq), lbas.size());
}

// ---------------------------------------------------------------------------
// RaidBackend
// ---------------------------------------------------------------------------

RaidBackend::RaidBackend(const RaidGeometry& geo) : layout_(geo) {}

RaidBackend::RaidBackend(RaidArray* array)
    : layout_(array->geometry()), array_(array) {
  KDD_CHECK(array_ != nullptr);
}

IoStatus RaidBackend::read_page(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  ++disk_reads_;
  if (array_) return array_->read_page(lba, out, plan);
  if (plan) {
    const DiskAddr a = layout_.map(lba);
    plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
  }
  return IoStatus::kOk;
}

void RaidBackend::plan_rmw(GroupId g, Lba lba, IoPlan* plan) {
  // [read data, read P(, read Q)] -> [write data, write P(, write Q)]
  const DiskAddr a = layout_.map(lba);
  const DiskAddr pa = layout_.parity_addr(g);
  const std::size_t rd = plan->next_phase();
  plan->add(rd, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kRead});
  plan->add(rd, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
  if (layout_.geometry().level == RaidLevel::kRaid6) {
    const DiskAddr qa = layout_.q_parity_addr(g);
    plan->add(rd, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
    plan->add(rd + 1, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
  }
  plan->add(rd + 1, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
  plan->add(rd + 1, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
}

IoStatus RaidBackend::write_page(Lba lba, std::span<const std::uint8_t> data,
                                 IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kRmw);
  const RaidGeometry& geo = layout_.geometry();
  const std::uint32_t parity = geo.parity_disks();
  disk_reads_ += parity ? 1 + parity : 0;  // old data + old parities
  disk_writes_ += 1 + parity;
  if (array_) {
    KDD_CHECK(!data.empty());
    return array_->write_page(lba, data, plan);
  }
  if (plan) {
    if (parity) {
      plan_rmw(layout_.group_of(lba), lba, plan);
    } else {
      const DiskAddr a = layout_.map(lba);
      plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::write_group(GroupId g, std::span<const Page> data, IoPlan* plan) {
  const RaidGeometry& geo = layout_.geometry();
  KDD_CHECK(data.size() == geo.data_disks());
  disk_writes_ += geo.data_disks() + geo.parity_disks();
  if (array_) return array_->write_group(g, data, plan);
  counter_stale_.erase(g);
  if (plan) {
    const std::size_t ph = plan->next_phase();
    for (std::uint32_t k = 0; k < geo.data_disks(); ++k) {
      const DiskAddr a = layout_.map(layout_.group_member(g, k));
      plan->add(ph, {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
    }
    if (geo.parity_disks() > 0) {
      const DiskAddr pa = layout_.parity_addr(g);
      plan->add(ph, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
      if (geo.level == RaidLevel::kRaid6) {
        const DiskAddr qa = layout_.q_parity_addr(g);
        plan->add(ph, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::write_page_nopar(Lba lba, std::span<const std::uint8_t> data,
                                       IoPlan* plan) {
  ++disk_writes_;
  if (array_) {
    KDD_CHECK(!data.empty());
    return array_->write_page_nopar(lba, data, plan);
  }
  counter_stale_.insert(layout_.group_of(lba));
  if (plan) {
    const DiskAddr a = layout_.map(lba);
    plan->add(plan->next_phase(), {DeviceOp::Target::kHdd, a.disk, a.page, IoKind::kWrite});
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::update_parity_rmw(GroupId g, std::span<const GroupDelta> deltas,
                                        IoPlan* plan, bool finalize) {
  const obs::SpanScope span(obs::Stage::kParity);
  const std::uint32_t parity = layout_.geometry().parity_disks();
  KDD_CHECK(parity > 0);
  disk_reads_ += parity;
  disk_writes_ += parity;
  if (array_) return array_->update_parity_rmw(g, deltas, plan, finalize);
  if (finalize) counter_stale_.erase(g);
  if (plan) {
    const DiskAddr pa = layout_.parity_addr(g);
    const std::size_t rd = plan->next_phase();
    plan->add(rd, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
    plan->add(rd + 1, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    if (layout_.geometry().level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      plan->add(rd, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
      plan->add(rd + 1, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::update_parity_rmw_batch(
    std::span<const GroupParityUpdate> updates, IoPlan* plan,
    std::vector<GroupId>* failed) {
  const obs::SpanScope span(obs::Stage::kParity);
  const std::uint32_t parity = layout_.geometry().parity_disks();
  KDD_CHECK(parity > 0);
  disk_reads_ += parity * updates.size();
  disk_writes_ += parity * updates.size();
  if (array_) return array_->update_parity_rmw_batch(updates, plan, failed);
  for (const GroupParityUpdate& up : updates) {
    if (up.finalize) counter_stale_.erase(up.group);
    if (plan) {
      const DiskAddr pa = layout_.parity_addr(up.group);
      const std::size_t rd = plan->next_phase();
      plan->add(rd, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kRead});
      plan->add(rd + 1, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
      if (layout_.geometry().level == RaidLevel::kRaid6) {
        const DiskAddr qa = layout_.q_parity_addr(up.group);
        plan->add(rd, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kRead});
        plan->add(rd + 1, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
      }
    }
  }
  return IoStatus::kOk;
}

IoStatus RaidBackend::update_parity_reconstruct_cached(
    GroupId g, std::span<const Page* const> current_data, IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kParity);
  const std::uint32_t parity = layout_.geometry().parity_disks();
  KDD_CHECK(parity > 0);
  disk_writes_ += parity;
  if (array_) {
    KDD_CHECK(current_data.size() == layout_.geometry().data_disks());
    return array_->update_parity_reconstruct(g, current_data, plan);
  }
  counter_stale_.erase(g);
  if (plan) {
    const DiskAddr pa = layout_.parity_addr(g);
    const std::size_t ph = plan->next_phase();
    plan->add(ph, {DeviceOp::Target::kHdd, pa.disk, pa.page, IoKind::kWrite});
    if (layout_.geometry().level == RaidLevel::kRaid6) {
      const DiskAddr qa = layout_.q_parity_addr(g);
      plan->add(ph, {DeviceOp::Target::kHdd, qa.disk, qa.page, IoKind::kWrite});
    }
  }
  return IoStatus::kOk;
}

bool RaidBackend::group_stale(GroupId g) const {
  return array_ ? array_->group_stale(g) : counter_stale_.contains(g);
}

std::uint64_t RaidBackend::stale_group_count() const {
  return array_ ? array_->stale_group_count() : counter_stale_.size();
}

}  // namespace kdd
