// NVRAM-resident cache state (Section III-B/III-C): the delta staging buffer,
// the metadata buffer, and the metadata log's head/tail counters.
//
// In the paper these live in battery-backed RAM on the array controller, so
// they survive power failures while all DRAM structures (the primary map) are
// lost. We model that by having the NvramState object owned *outside* the
// cache instance: crash tests destroy the cache (losing the primary map) and
// hand the surviving NvramState to a fresh instance for recovery.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "cache/sets.hpp"
#include "common/check.hpp"
#include "common/units.hpp"
#include "compress/delta.hpp"

namespace kdd {

/// A delta parked in NVRAM before being packed into a DEZ page.
struct StagedDelta {
  Lba lba = kInvalidLba;          ///< RAID page the delta belongs to
  std::uint32_t daz_idx = 0;      ///< cache slot of the corresponding DAZ page
  std::uint32_t packed_size = 0;  ///< bytes when packed (payload + header)
  Delta blob;                     ///< real payload (prototype mode); empty in counter mode
};

/// FIFO staging buffer with write coalescing: only the newest delta per DAZ
/// page is kept (Section III-C).
class StagingBuffer {
 public:
  explicit StagingBuffer(std::size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {
    KDD_CHECK(capacity_bytes_ >= kPageSize);
  }

  bool fits(std::uint32_t packed_size) const {
    return bytes_used_ + packed_size <= capacity_bytes_;
  }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t bytes_used() const { return bytes_used_; }
  std::size_t capacity_bytes() const { return capacity_bytes_; }

  /// Inserts (coalescing an existing delta for the same page). The caller
  /// must ensure it fits after any coalesced removal — use put() only after
  /// erase()+fits() or when fits() holds.
  void put(StagedDelta d) {
    erase(d.lba);
    KDD_CHECK(fits(d.packed_size));
    bytes_used_ += d.packed_size;
    entries_.push_back(std::move(d));
  }

  const StagedDelta* find(Lba lba) const {
    for (const StagedDelta& d : entries_) {
      if (d.lba == lba) return &d;
    }
    return nullptr;
  }

  bool erase(Lba lba) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->lba == lba) {
        bytes_used_ -= it->packed_size;
        entries_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Drains all staged deltas in FIFO order.
  std::vector<StagedDelta> take_all() {
    std::vector<StagedDelta> out(std::make_move_iterator(entries_.begin()),
                                 std::make_move_iterator(entries_.end()));
    entries_.clear();
    bytes_used_ = 0;
    return out;
  }

  const std::deque<StagedDelta>& entries() const { return entries_; }

 private:
  std::size_t capacity_bytes_;
  std::size_t bytes_used_ = 0;
  std::deque<StagedDelta> entries_;
};

/// One persistent mapping record (Figure 3). Serialises to 17 bytes: a
/// 16-byte payload plus a CRC-8 validity byte computed over the payload and
/// the owning log page's sequence number, so a torn log-page write (partial
/// sector prefix persisted) is detected and its tail discarded on replay.
struct MetadataEntry {
  Lba lba_raid = kInvalidLba;
  std::uint32_t daz_idx = 0;  ///< cache slot of the DAZ page ("lba_daz")
  PageState state = PageState::kFree;
  std::uint32_t dez_idx = CacheSets::kNone;  ///< DEZ slot holding the delta (kOld)
  std::uint16_t dez_off = 0;
  std::uint16_t dez_len = 0;

  static constexpr std::size_t kPayloadSize = 16;
  static constexpr std::size_t kSerializedSize = kPayloadSize + 1;  // + CRC-8
};

/// Mapping-table buffer in NVRAM, coalescing by DAZ slot (a newer entry for
/// the same cache page overwrites the older one, Section III-C).
class MetadataBuffer {
 public:
  explicit MetadataBuffer(std::size_t capacity_entries)
      : capacity_(capacity_entries) {
    KDD_CHECK(capacity_ > 0);
  }

  bool full() const { return entries_.size() >= capacity_; }
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }
  std::size_t capacity() const { return capacity_; }

  bool contains(std::uint32_t daz_idx) const { return index_.contains(daz_idx); }

  void put(const MetadataEntry& e) {
    const auto it = index_.find(e.daz_idx);
    if (it != index_.end()) {
      entries_[it->second] = e;
      return;
    }
    index_[e.daz_idx] = entries_.size();
    entries_.push_back(e);
  }

  std::vector<MetadataEntry> drain() {
    std::vector<MetadataEntry> out = std::move(entries_);
    entries_.clear();
    index_.clear();
    return out;
  }

  const std::vector<MetadataEntry>& entries() const { return entries_; }

 private:
  std::size_t capacity_;
  std::vector<MetadataEntry> entries_;
  std::unordered_map<std::uint32_t, std::size_t> index_;
};

/// Everything that survives a power failure.
struct NvramState {
  NvramState(std::size_t staging_bytes, std::size_t metadata_entries)
      : staging(staging_bytes), metadata(metadata_entries) {}

  StagingBuffer staging;
  MetadataBuffer metadata;
  std::uint64_t log_head = 0;  ///< monotonically increasing page counters;
  std::uint64_t log_tail = 0;  ///< physical slot = counter % partition_pages

  // Online-rebuild checkpoint (ISSUE 6): which disk was being rebuilt and how
  // far the cursor got, persisted by the RebuildEngine's checkpoint sink. A
  // crash mid-rebuild resumes from here instead of re-reconstructing
  // completed chunks (and without forgetting the array was degraded).
  std::uint32_t rebuild_disk = 0;
  std::uint64_t rebuild_cursor = 0;
  bool rebuild_active = false;

  // Segment staging (ISSUE 9): id of the currently-open segment. Bumped only
  // after a seal completes on powered media, so after a crash it still names
  // the segment whose flush may have been in flight — recovery reads that
  // segment's header ring slot and accepts or discards it wholesale.
  std::uint64_t segment_seq = 0;
};

}  // namespace kdd
