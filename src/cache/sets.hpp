// N-way set-associative cache organisation with per-set LRU (Section III-B).
//
// One CacheSlot describes one SSD cache page. States cover all policies:
//   kFree / kClean            — every policy
//   kOld / kDelta             — KDD's DAZ old pages and DEZ delta pages
//   kOldVersion / kNewVersion — LeavO's pinned version pairs
// Only kClean pages sit in the per-set LRU list (the others are reclaimed by
// cleaning, never evicted directly), which makes the LRU tail the eviction
// victim without filtering.
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace kdd {

enum class PageState : std::uint8_t {
  kFree,
  kClean,
  kOld,         // KDD: DAZ page whose delta is pending (parity stale)
  kDelta,       // KDD: DEZ page packed with deltas
  kOldVersion,  // LeavO: pinned pre-update version
  kNewVersion,  // LeavO: current version of a dirty pair
};

class CacheSets {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;
  /// dez_idx value meaning "delta still staged in NVRAM" (paper: fields = -1).
  static constexpr std::uint32_t kStaged = 0xfffffffeu;
  /// home_log_page value meaning "no persistent entry committed yet".
  static constexpr std::uint64_t kNoHome = ~0ull;

  struct CacheSlot {
    PageState state = PageState::kFree;
    Lba lba = kInvalidLba;            ///< RAID page cached here (data slots)
    std::uint32_t dez_idx = kNone;    ///< KDD old: slot index of the DEZ page
    std::uint16_t dez_off = 0;        ///< byte offset of the delta in the DEZ page
    std::uint16_t dez_len = 0;        ///< packed delta length in bytes
    std::uint16_t valid_count = 0;    ///< KDD delta: live deltas in this page
    std::uint32_t partner = kNone;    ///< LeavO: the paired version slot
    std::uint32_t lru_prev = kNone;
    std::uint32_t lru_next = kNone;
    std::uint64_t home_log_page = kNoHome;  ///< metadata log page (monotonic
                                            ///< counter) owning the latest
                                            ///< persistent entry
  };

  CacheSets(std::uint64_t pages, std::uint32_t ways);

  std::uint32_t num_sets() const { return num_sets_; }
  std::uint32_t ways() const { return ways_; }
  std::uint64_t pages() const { return static_cast<std::uint64_t>(num_sets_) * ways_; }

  CacheSlot& slot(std::uint32_t idx) { return slots_[idx]; }
  const CacheSlot& slot(std::uint32_t idx) const { return slots_[idx]; }
  std::uint32_t set_of(std::uint32_t idx) const { return idx / ways_; }

  /// All state changes go through here so per-set free/DEZ counters stay
  /// consistent; also maintains LRU membership (kClean slots only).
  void set_state(std::uint32_t idx, PageState next);

  /// Finds the slot caching `lba` as current data (kClean, kOld or
  /// kNewVersion). Returns kNone if absent.
  std::uint32_t find_data(std::uint32_t set, Lba lba) const;

  /// Finds the slot holding `lba` in exactly `state`.
  std::uint32_t find_state(std::uint32_t set, Lba lba, PageState state) const;

  /// Any free slot in the set, or kNone.
  std::uint32_t find_free(std::uint32_t set) const;

  std::uint32_t free_count(std::uint32_t set) const { return free_count_[set]; }
  std::uint32_t dez_count(std::uint32_t set) const { return dez_count_[set]; }

  /// LRU (kClean members only). Most-recent at head; victim = tail.
  void lru_touch(std::uint32_t idx);
  std::uint32_t lru_tail(std::uint32_t set) const { return lru_tail_[set]; }

  /// Clears a slot back to factory state (kFree, fields reset).
  void reset_slot(std::uint32_t idx);

  /// Total slots in a given state (O(sets); for tests and reporting).
  std::uint64_t count_state(PageState s) const;

 private:
  void lru_insert_head(std::uint32_t idx);
  void lru_remove(std::uint32_t idx);

  std::uint32_t num_sets_;
  std::uint32_t ways_;
  std::vector<CacheSlot> slots_;
  std::vector<std::uint32_t> lru_head_;
  std::vector<std::uint32_t> lru_tail_;
  std::vector<std::uint32_t> free_count_;
  std::vector<std::uint32_t> dez_count_;
};

}  // namespace kdd
