// Log-structured segment staging (dm-writeboost style, adapted to the KDD
// cache): committed DAZ/DEZ pages and metadata-log pages accumulate in a
// RAM segment instead of being written to the SSD one page at a time. When
// the segment fills (or a barrier forces it), it is *sealed* — a header page
// carrying a monotonic segment id, the list of target SSD LBAs and a
// whole-segment CRC over the payload bytes — and flushed as ONE vectored
// sequential SSD write (BlockDevice::write_multi), header first.
//
// Why this is crash-safe even though the segment lives in plain RAM: the KDD
// write path keeps RAID data members current *before* any delta or page is
// staged toward the SSD (acked durability never depends on cache contents),
// and the NVRAM staging/metadata buffers survive independently. Losing an
// unsealed segment therefore loses only cache state that recovery can
// retire: the header-first write order plus the sector-prefix torn-write
// model guarantee that whenever any payload page reached the media, the
// header did too, so recovery can enumerate *exactly* the affected pages,
// validate the whole-segment CRC, and either accept the segment (fully
// persisted) or discard precisely its page list — subsuming the metadata
// log's per-entry CRC-8 torn-tail handling with a single coarser check.
//
// The stager itself is a passive in-RAM structure (buffering, coalescing,
// header serialisation, CRC); CacheSsd drives the device I/O and recovery
// (src/cache/backend.*), so this class is unit-testable without a device.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "blockdev/block_device.hpp"
#include "common/bytes.hpp"
#include "common/units.hpp"

namespace kdd {

struct SegmentConfig {
  std::uint64_t segment_pages = 64;  ///< payload pages per sealed segment
  std::uint64_t ring_pages = 4;      ///< header ring slots (id % ring_pages)
  Lba ring_base = 0;                 ///< absolute SSD LBA of the header ring
};

/// Counters exported as kdd_segment_* metrics (owned by CacheSsd, which
/// drives the I/O; the stager only buffers).
struct SegmentStats {
  std::uint64_t seals = 0;            ///< segments flushed
  std::uint64_t forced_seals = 0;     ///< partial segments sealed by a barrier
  std::uint64_t pages_sealed = 0;     ///< payload pages flushed via seals
  std::uint64_t pages_staged = 0;     ///< stage() calls accepted
  std::uint64_t pages_coalesced = 0;  ///< stage() overwrote a pending page
  std::uint64_t write_ops = 0;        ///< host write commands issued by seals
  std::uint64_t fallback_page_writes = 0;  ///< per-page retries after a failed batch
  std::uint64_t lost_pages = 0;       ///< pages abandoned after retries failed
  std::uint64_t recovered_segments = 0;  ///< recovery accepted the in-flight segment
  std::uint64_t discarded_segments = 0;  ///< recovery discarded the unsealed segment
  std::uint64_t discarded_pages = 0;     ///< pages invalidated by that discard
};

class SegmentStager {
 public:
  /// "KDDSEG01" — the header magic.
  static constexpr std::uint64_t kMagic = 0x4b44445345473031ull;
  static constexpr std::size_t kHeaderFixedBytes = 40;
  static constexpr std::size_t kMaxEntries =
      (kPageSize - kHeaderFixedBytes) / sizeof(std::uint64_t);

  SegmentStager(const SegmentConfig& config, bool counter_mode);

  const SegmentConfig& config() const { return config_; }

  /// Stages `data` (empty in counter mode) destined for absolute SSD LBA
  /// `ssd_lba`, coalescing an already-pending write to the same LBA in
  /// place. Returns true when the segment is full and must be sealed.
  bool stage(Lba ssd_lba, std::span<const std::uint8_t> data);

  bool pending(Lba ssd_lba) const;
  /// Read-through for pending pages (prototype mode). Returns false when the
  /// LBA is not pending or carries no bytes.
  bool read_pending(Lba ssd_lba, std::span<std::uint8_t> out) const;
  /// Trim: forgets a pending page (it will not be written at seal).
  void drop(Lba ssd_lba);

  bool empty() const { return live_ == 0; }
  std::size_t live_pages() const { return live_; }
  bool full() const;

  std::uint64_t open_segment_id() const { return id_; }
  void set_open_segment_id(std::uint64_t id) { id_ = id; }
  /// Ring slot the open segment's header will occupy.
  Lba header_slot() const { return config_.ring_base + id_ % config_.ring_pages; }
  static Lba header_slot_for(const SegmentConfig& config, std::uint64_t id) {
    return config.ring_base + id % config.ring_pages;
  }

  /// Serialises the header for the current live set into `*header` and
  /// returns the write batch, header page FIRST (the order is load-bearing:
  /// prefix persistence means a readable header whenever any payload
  /// persisted). Data spans reference stager-owned memory valid until
  /// finish_seal(). Counter mode produces LBAs with empty payload spans.
  std::vector<PageWrite> build_seal(Page* header) const;

  /// Target LBAs of the current live set, in write order.
  std::vector<Lba> live_lbas() const;

  /// Completes a seal: clears the segment and advances the open segment id.
  void finish_seal();

  /// Discards all staged pages without sealing (the backing device was
  /// replaced, so the staged contents belong to dead media). The open
  /// segment id is unchanged — it stays monotonic across device swaps.
  void abandon();

  // ---- Header format helpers (shared with CacheSsd recovery) --------------

  /// FNV-1a 64 continuation over `bytes`.
  static std::uint64_t fnv1a(std::uint64_t h, std::span<const std::uint8_t> bytes);
  static constexpr std::uint64_t kFnvSeed = 0xcbf29ce484222325ull;

  /// Parses and validates a header page (magic + header CRC). On success
  /// fills the segment id, the payload LBA list and the whole-segment
  /// payload CRC. Returns false for garbage, torn or foreign pages.
  static bool parse_header(std::span<const std::uint8_t> page, std::uint64_t* id,
                           std::vector<Lba>* lbas, std::uint64_t* payload_crc);

 private:
  struct Entry {
    Lba lba = kInvalidLba;
    bool dead = false;
    Page data;  ///< empty in counter mode
  };

  SegmentConfig config_;
  bool counter_mode_;
  std::uint64_t id_ = 0;
  std::vector<Entry> entries_;                  ///< staging order, incl. dead
  std::unordered_map<Lba, std::size_t> index_;  ///< lba -> entries_ slot
  std::size_t live_ = 0;
};

}  // namespace kdd
