#include "cache/metadata_log.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kdd {

namespace {

constexpr std::uint8_t state_code(PageState s) { return static_cast<std::uint8_t>(s); }

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    (static_cast<std::uint16_t>(p[1]) << 8));
}

void put_u64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// CRC-8 (poly 0x07) over the 16-byte entry payload followed by the owning
/// page's 8-byte sequence number. Folding the sequence in means an entry that
/// survived from a previous lap of the circular log can never masquerade as
/// part of the current page.
std::uint8_t entry_crc8(const std::uint8_t* payload, std::uint64_t seq) {
  std::uint8_t seq_bytes[8];
  put_u64(seq_bytes, seq);
  std::uint8_t crc = 0xff;
  const auto feed = [&crc](std::uint8_t b) {
    crc ^= b;
    for (int k = 0; k < 8; ++k) {
      const unsigned shifted = static_cast<unsigned>(crc) << 1;
      crc = static_cast<std::uint8_t>((crc & 0x80u) ? shifted ^ 0x07u : shifted);
    }
  };
  for (std::size_t i = 0; i < MetadataEntry::kPayloadSize; ++i) feed(payload[i]);
  for (const std::uint8_t b : seq_bytes) feed(b);
  return crc;
}

}  // namespace

MetadataLog::MetadataLog(CacheSsd* ssd, NvramState* nvram, CacheSets* sets,
                         double gc_threshold)
    : ssd_(ssd), nvram_(nvram), sets_(sets), gc_threshold_(gc_threshold) {
  KDD_CHECK(ssd_ && nvram_ && sets_);
  KDD_CHECK(ssd_->metadata_pages() >= 4);
  KDD_CHECK(gc_threshold_ > 0.0 && gc_threshold_ < 1.0);
}

void MetadataLog::add_entry(const MetadataEntry& entry, IoPlan* plan) {
  nvram_->metadata.put(entry);
  if (nvram_->metadata.full()) commit_buffer(plan);
}

void MetadataLog::commit_buffer(IoPlan* plan) {
  if (nvram_->metadata.empty()) return;
  std::vector<MetadataEntry> entries = nvram_->metadata.drain();
  std::size_t pos = 0;
  while (pos < entries.size()) {
    const std::size_t n = std::min(kEntriesPerPage, entries.size() - pos);
    commit_entries({entries.begin() + static_cast<std::ptrdiff_t>(pos),
                    entries.begin() + static_cast<std::ptrdiff_t>(pos + n)},
                   plan);
    pos += n;
  }
}

void MetadataLog::commit_entries(std::vector<MetadataEntry> entries, IoPlan* plan) {
  const obs::SpanScope span(obs::Stage::kMetadataLog);
  KDD_CHECK(!entries.empty());
  KDD_CHECK(used_pages() < partition_pages());  // circular-log hard invariant
  const std::uint64_t seq = nvram_->log_tail;
  if (ssd_->real()) {
    Page page = make_page();
    serialize_page(entries, seq, page);
    ssd_->write_metadata(seq % partition_pages(), page, plan);
  } else {
    ssd_->write_metadata(seq % partition_pages(), {}, plan);
  }
  ++pages_written_;
  for (const MetadataEntry& e : entries) {
    sets_->slot(e.daz_idx).home_log_page = seq;
  }
  mirror_[seq] = std::move(entries);
  ++nvram_->log_tail;

  if (!in_gc_) {
    in_gc_ = true;
    const double threshold =
        gc_threshold_ * static_cast<double>(partition_pages());
    std::uint64_t guard = 2 * partition_pages();
    while (static_cast<double>(used_pages()) >= threshold && guard-- > 0) {
      collect_one_page(plan);
    }
    in_gc_ = false;
  }
}

void MetadataLog::collect_one_page(IoPlan* plan) {
  KDD_CHECK(used_pages() > 0);
  ++gc_passes_;
  {
    static obs::Counter gc_counter(&obs::MetricsRegistry::global(),
                                   "kdd_log_gc_passes_total");
    gc_counter.inc();
  }
  const std::uint64_t seq = nvram_->log_head;
  auto it = mirror_.find(seq);
  KDD_CHECK(it != mirror_.end());
  std::vector<MetadataEntry> entries = std::move(it->second);
  mirror_.erase(it);
  ++nvram_->log_head;
  for (const MetadataEntry& e : entries) {
    // Live iff this page still owns the slot's latest committed entry and no
    // newer entry is waiting in the NVRAM buffer.
    if (sets_->slot(e.daz_idx).home_log_page != seq) continue;
    if (nvram_->metadata.contains(e.daz_idx)) continue;
    // A free-state entry at the head can simply be dropped: any entry it
    // superseded lived in an even older page, which has already been
    // collected, so replay can no longer resurrect the slot.
    if (sets_->slot(e.daz_idx).state == PageState::kFree) {
      sets_->slot(e.daz_idx).home_log_page = CacheSets::kNoHome;
      continue;
    }
    sets_->slot(e.daz_idx).home_log_page = CacheSets::kNoHome;
    nvram_->metadata.put(e);
    if (nvram_->metadata.full()) commit_buffer(plan);
  }
}

void MetadataLog::serialize_page(const std::vector<MetadataEntry>& entries,
                                 std::uint64_t seq, Page& out) const {
  KDD_CHECK(entries.size() <= kEntriesPerPage);
  put_u16(out.data(), static_cast<std::uint16_t>(entries.size()));
  put_u64(out.data() + 2, seq);
  std::size_t off = kPageHeaderSize;
  for (const MetadataEntry& e : entries) {
    std::uint8_t* p = out.data() + off;
    KDD_CHECK(e.lba_raid <= 0xffffffffull || e.lba_raid == kInvalidLba);
    put_u32(p, static_cast<std::uint32_t>(e.lba_raid & 0xffffffffull));
    put_u32(p + 4, e.daz_idx);
    put_u32(p + 8, e.dez_idx);
    KDD_CHECK(e.dez_off < (1u << 13));
    put_u16(p + 12, static_cast<std::uint16_t>(e.dez_off |
                                               (std::uint16_t{state_code(e.state)} << 13)));
    put_u16(p + 14, e.dez_len);
    p[MetadataEntry::kPayloadSize] = entry_crc8(p, seq);
    off += MetadataEntry::kSerializedSize;
  }
}

bool MetadataLog::deserialize_page(std::span<const std::uint8_t> in,
                                   std::uint64_t expected_seq,
                                   std::vector<MetadataEntry>& out,
                                   std::size_t* dropped) {
  const std::uint16_t n = get_u16(in.data());
  const std::uint64_t seq = get_u64(in.data() + 2);
  // A wrong sequence number means this physical slot still holds a previous
  // lap of the circular log (the page write never reached the media); an
  // impossible count means the header itself is damaged.
  if (seq != expected_seq || n > kEntriesPerPage) return false;
  out.reserve(out.size() + n);
  std::size_t off = kPageHeaderSize;
  for (std::uint16_t i = 0; i < n; ++i) {
    const std::uint8_t* p = in.data() + off;
    const std::uint16_t packed = get_u16(p + 12);
    const std::uint8_t code = static_cast<std::uint8_t>(packed >> 13);
    if (p[MetadataEntry::kPayloadSize] != entry_crc8(p, expected_seq) ||
        code > static_cast<std::uint8_t>(PageState::kNewVersion)) {
      // Torn tail: the page write persisted only a sector prefix. Entries are
      // committed in order, so everything from here on is discarded.
      *dropped += static_cast<std::size_t>(n - i);
      break;
    }
    MetadataEntry e;
    const std::uint32_t lba32 = get_u32(p);
    e.lba_raid = lba32 == 0xffffffffu ? kInvalidLba : lba32;
    e.daz_idx = get_u32(p + 4);
    e.dez_idx = get_u32(p + 8);
    e.dez_off = packed & 0x1fff;
    e.state = static_cast<PageState>(code);
    e.dez_len = get_u16(p + 14);
    out.push_back(e);
    off += MetadataEntry::kSerializedSize;
  }
  return true;
}

std::vector<MetadataEntry> MetadataLog::replay(IoPlan* plan) {
  std::vector<MetadataEntry> all;
  for (std::uint64_t seq = nvram_->log_head; seq < nvram_->log_tail; ++seq) {
    if (ssd_->real()) {
      Page page = make_page();
      const IoStatus st = ssd_->read_metadata(seq % partition_pages(), page, plan);
      std::size_t dropped = 0;
      if (st != IoStatus::kOk || !deserialize_page(page, seq, all, &dropped)) {
        ++bad_pages_skipped_;
        KDD_LOG(Warn, "metadata log: unusable page seq=%llu skipped in replay",
                static_cast<unsigned long long>(seq));
        continue;
      }
      if (dropped > 0) {
        KDD_LOG(Warn, "metadata log: %zu torn entries dropped at seq=%llu",
                dropped, static_cast<unsigned long long>(seq));
      }
      torn_entries_dropped_ += dropped;
    } else {
      const auto it = mirror_.find(seq);
      if (it == mirror_.end()) continue;
      all.insert(all.end(), it->second.begin(), it->second.end());
    }
  }
  return all;
}

void MetadataLog::rebuild_after_recovery(IoPlan* plan) {
  mirror_.clear();
  for (std::uint64_t seq = nvram_->log_head; seq < nvram_->log_tail; ++seq) {
    KDD_CHECK(ssd_->real());
    Page page = make_page();
    const IoStatus st = ssd_->read_metadata(seq % partition_pages(), page, plan);
    std::vector<MetadataEntry> entries;
    std::size_t dropped = 0;
    if (st != IoStatus::kOk || !deserialize_page(page, seq, entries, &dropped)) {
      // Unusable page: its entries are lost, but every mapping has either a
      // newer committed copy, a newer NVRAM-buffered copy, or describes a
      // cache page whose contents the post-recovery audit cross-checks
      // against the RAID copy — so dropping the page is safe.
      ++bad_pages_skipped_;
      mirror_[seq] = {};
      continue;
    }
    torn_entries_dropped_ += dropped;
    for (const MetadataEntry& e : entries) {
      sets_->slot(e.daz_idx).home_log_page = seq;
    }
    mirror_[seq] = std::move(entries);
  }
}

}  // namespace kdd
