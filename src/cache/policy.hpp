// Cache policy interface and the shared set-associative machinery every
// policy (WT, WA, LeavO, KDD) builds on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/backend.hpp"
#include "cache/cache_stats.hpp"
#include "cache/sets.hpp"
#include "raid/io_plan.hpp"

namespace kdd {

/// Knobs common to all policies plus the KDD-specific ones (ignored by the
/// baselines). Defaults follow Section IV-A3 (0.59 % metadata partition,
/// 4 KiB NVRAM buffers) and sensible cleaning watermarks.
struct PolicyConfig {
  std::uint64_t ssd_pages = 262144;  ///< total SSD capacity in pages
  std::uint32_t ways = 16;           ///< set associativity
  double metadata_fraction = 0.0059; ///< of ssd_pages, for KDD/LeavO metadata
  std::size_t staging_buffer_bytes = kPageSize;
  std::size_t metadata_buffer_entries = 240;  ///< one metadata page's worth
  double clean_high_watermark = 0.30;  ///< old+delta fraction triggering cleaning
  double clean_low_watermark = 0.15;   ///< cleaning stops below this
  double log_gc_threshold = 0.90;
  bool reclaim_as_clean = false;  ///< Section III-D scheme 1 (true) vs 2 (false)
  /// Batched destage: the cleaner drains dirty groups through the
  /// prepare/fold/commit pipeline (src/kdd/destage.hpp), coalescing each
  /// group's deltas into one stale-parity RMW and committing whole batches
  /// with one update_parity_rmw_batch call. Off = legacy per-group cleaning.
  bool destage_batching = true;
  /// Groups per destage batch. 0 = auto: sized from the high/low watermark
  /// gap (enough groups to get from high back under low in ~4 batches).
  std::uint32_t destage_batch_groups = 0;
  /// Worker threads in the ConcurrentCache cleaner pool. 0 = no pool (the
  /// single idle-cleaner thread drives destage inline, as before).
  std::uint32_t cleaner_threads = 0;
  /// LARC-style lazy admission (Section V-C lists it as complementary to
  /// KDD): admit a page only on its second miss within a ghost-LRU window.
  bool selective_admission = false;
  /// Log-structured segment staging (KDD only): committed SSD page writes
  /// accumulate in RAM and land as one sealed vectored sequential write per
  /// segment (src/cache/segment.hpp). Off by default so baselines and the
  /// legacy per-page write accounting are unchanged.
  bool segment_staging = false;
  std::uint32_t segment_pages = 64;  ///< payload pages per sealed segment
  // -- Elastic compression-aware delta zone (KDD only; ROADMAP item 3) -------
  // Extent *accounting* (live/dead bytes per DEZ page, src/cache/dez_space)
  // is always on — it is pure bookkeeping. These knobs enable the behaviours
  // built on it; all default off so existing deterministic replays and the
  // counter-mode rng draw order are unchanged.
  /// Variable-size placement: commits append packed deltas into the tail
  /// slack of partially-filled DEZ pages before burning fresh cache pages.
  bool dez_elastic = false;
  /// Online delta-zone GC/defrag: relocate live deltas out of fragmented
  /// DEZ pages (dead-byte ratio >= dez_gc_dead_ratio) and free the page.
  bool dez_gc = false;
  double dez_gc_dead_ratio = 0.5;      ///< victim threshold (dead/page bytes)
  std::uint32_t dez_gc_max_victims = 4;  ///< pages compacted per GC pass
  /// Adaptive DAZ/DEZ boundary: a rolling compressibility estimate plus the
  /// ghost-LRU hit-ratio signal steer a cap on DEZ pages; slack under the
  /// static layout is exposed as elastic spare absorbing destage bursts and
  /// degraded/rebuild traffic.
  bool adaptive_boundary = false;
  double boundary_ewma = 0.05;          ///< weight of each new compressibility sample
  std::uint64_t boundary_epoch_ops = 512;  ///< requests between boundary decisions
  double delta_ratio_mean = 0.25; ///< counter-mode content locality (Gaussian mean)
  std::uint64_t seed = 1;
};

class CachePolicy {
 public:
  virtual ~CachePolicy() = default;

  virtual std::string name() const = 0;

  /// Serves a single-page read. `out` is filled in prototype mode and may be
  /// an empty span in counter mode. `plan` (optional) receives the device ops.
  virtual IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan = nullptr) = 0;

  /// Serves a single-page write; `data` may be empty in counter mode.
  virtual IoStatus write(Lba lba, std::span<const std::uint8_t> data,
                         IoPlan* plan = nullptr) = 0;

  /// Drains all deferred state (stale parity, buffered metadata).
  virtual void flush(IoPlan* plan = nullptr) { (void)plan; }

  /// Idle-trigger hook: the background cleaning thread wakes up
  /// (Section III-D). Called by drivers when the device queues go quiet.
  virtual void on_idle(IoPlan* plan = nullptr) { (void)plan; }

  /// Snapshot of all statistics (hits plus device counters).
  virtual CacheStats stats() const = 0;

  /// When set, policies record *background* I/O (cleaning-thread parity
  /// updates, metadata commits) here instead of the foreground request plan,
  /// so the timed simulator can schedule it without charging it to the
  /// triggering request — mirroring the paper's background cleaning thread.
  void set_background_plan(IoPlan* bg) { background_plan_ = bg; }

 protected:
  /// The plan background work should be recorded into: the dedicated
  /// background plan when the driver installed one, else the foreground plan.
  IoPlan* bg_or(IoPlan* foreground) const {
    return background_plan_ ? background_plan_ : foreground;
  }

 private:
  IoPlan* background_plan_ = nullptr;
};

/// Owns the set structure and the two backends; provides the address-to-set
/// mapping ("DAZ pages in the same parity stripe are mapped to the same cache
/// set") and LRU eviction of clean pages.
class BlockCacheBase : public CachePolicy {
 public:
  /// Counter mode.
  BlockCacheBase(const PolicyConfig& config, const RaidGeometry& geo,
                 std::uint64_t metadata_pages, std::uint64_t cache_pages);
  /// Prototype mode (array/ssd not owned).
  BlockCacheBase(const PolicyConfig& config, RaidArray* array, SsdModel* ssd,
                 std::uint64_t metadata_pages, std::uint64_t cache_pages);

  CacheStats stats() const override;

  const CacheSets& sets() const { return sets_; }
  CacheSsd& cache_ssd() { return ssd_; }
  RaidBackend& raid() { return raid_; }

 protected:
  /// Cache set for a RAID page: hash of its parity group, so that pages of
  /// one stripe land in one set and can be reclaimed together.
  std::uint32_t set_for(Lba lba) const;

  /// Evicts the LRU clean page of `set` (trims the SSD page). Returns the
  /// freed slot index, or kNone if the set has no clean page.
  /// Derived classes that persist metadata override on_evict_slot().
  std::uint32_t evict_lru_clean(std::uint32_t set);

  /// Hook invoked when evict_lru_clean frees a slot (before reset).
  virtual void on_evict_slot(std::uint32_t idx) { (void)idx; }

  PolicyConfig config_;
  CacheSets sets_;
  CacheSsd ssd_;
  RaidBackend raid_;
  CacheStats stats_;
};

/// Computes the cache-page/metadata-page split for a given total SSD size.
/// With segment staging on, a small header ring is carved out after the cache
/// region (ring base = metadata_pages + cache_pages).
struct CacheLayoutPlan {
  std::uint64_t metadata_pages = 0;
  std::uint64_t cache_pages = 0;
  std::uint64_t segment_ring_pages = 0;
};
CacheLayoutPlan plan_cache_layout(const PolicyConfig& config, bool needs_metadata);

}  // namespace kdd
