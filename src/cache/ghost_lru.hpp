// Ghost LRU for LARC-style lazy admission (Huang et al., MSST'13 — cited in
// Section V-C as complementary to KDD). The ghost list tracks recently
// missed addresses without caching their data; a page is admitted into the
// real cache only on its second miss within the ghost window, which filters
// one-touch traffic and cuts allocation writes on the SSD.
#pragma once

#include <list>
#include <unordered_map>

#include "common/check.hpp"
#include "common/units.hpp"

namespace kdd {

class GhostLru {
 public:
  explicit GhostLru(std::size_t capacity) : capacity_(capacity) {
    KDD_CHECK(capacity_ > 0);
  }

  /// Called on a cache miss for `lba`. Returns true if the address was in
  /// the ghost list (=> admit it; the ghost entry is consumed); otherwise
  /// records it and returns false (=> do not admit yet).
  bool touch_and_check(Lba lba) {
    const auto it = map_.find(lba);
    if (it != map_.end()) {
      order_.erase(it->second);
      map_.erase(it);
      return true;
    }
    order_.push_front(lba);
    map_[lba] = order_.begin();
    if (map_.size() > capacity_) {
      map_.erase(order_.back());
      order_.pop_back();
    }
    return false;
  }

  /// Drops an address (used when the page got admitted through another path).
  void erase(Lba lba) {
    const auto it = map_.find(lba);
    if (it == map_.end()) return;
    order_.erase(it->second);
    map_.erase(it);
  }

  std::size_t size() const { return map_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::list<Lba> order_;
  std::unordered_map<Lba, std::list<Lba>::iterator> map_;
};

}  // namespace kdd
