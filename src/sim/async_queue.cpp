#include "sim/async_queue.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kdd {

void SimCompletionQueue::schedule(SimTime due_us, IoStatus st,
                                  AsyncCallback cb) {
  std::size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = slots_.size();
    slots_.emplace_back();
  }
  slots_[slot].st = st;
  slots_[slot].cb = std::move(cb);
  heap_.push(Pending{std::max(due_us, now_us_), next_seq_++, slot});
}

std::size_t SimCompletionQueue::advance_to(SimTime now_us) {
  now_us_ = std::max(now_us_, now_us);
  std::size_t fired = 0;
  while (!heap_.empty() && heap_.top().due_us <= now_us_) {
    const std::size_t slot = heap_.top().slot;
    heap_.pop();
    // Move the callback out before invoking: a completion may schedule
    // further I/O onto this queue (reusing the slot) from inside the call.
    AsyncCallback cb = std::move(slots_[slot].cb);
    const IoStatus st = slots_[slot].st;
    slots_[slot].cb = nullptr;
    free_slots_.push_back(slot);
    if (cb) cb(st);
    ++fired;
  }
  return fired;
}

std::size_t SimCompletionQueue::drain() {
  std::size_t fired = 0;
  while (!heap_.empty()) {
    fired += advance_to(heap_.top().due_us);
  }
  return fired;
}

void SimAsyncDevice::submit(const AsyncIo& io, AsyncCallback cb) {
  KDD_CHECK(cq_ != nullptr);
  // Execute the data plane now — contents must be exact for parity/delta
  // verification — and defer only the completion by the modelled latency.
  const IoStatus st = io.op == AsyncIo::Op::kRead ? read(io.page, io.out)
                                                  : write(io.page, io.data);
  const SimTime latency = model_ ? model_(io.op, io.page) : 0;
  cq_->schedule(cq_->now() + latency, st, std::move(cb));
}

SimAsyncDevice::ServiceModel hdd_service_model(HddTimingModel* model,
                                               Rng* rng) {
  KDD_CHECK(model != nullptr && rng != nullptr);
  return [model, rng](AsyncIo::Op op, Lba page) {
    const IoKind kind = op == AsyncIo::Op::kRead ? IoKind::kRead : IoKind::kWrite;
    return model->service_time(kind, page, /*pages=*/1, *rng);
  };
}

SimAsyncDevice::ServiceModel ssd_service_model(const SsdTimingModel* model,
                                               Rng* rng) {
  KDD_CHECK(model != nullptr && rng != nullptr);
  return [model, rng](AsyncIo::Op op, Lba) {
    const IoKind kind = op == AsyncIo::Op::kRead ? IoKind::kRead : IoKind::kWrite;
    return model->service_time(kind, *rng);
  };
}

}  // namespace kdd
