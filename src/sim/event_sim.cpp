#include "sim/event_sim.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kdd {

namespace {
/// Latency charged to a request that needed no device I/O at all
/// (e.g. served entirely from NVRAM buffers).
constexpr SimTime kNullLatencyUs = 5;
}  // namespace

EventSimulator::EventSimulator(const SimConfig& config, CachePolicy* policy)
    : config_(config),
      policy_(policy),
      ssd_model_(config.ssd),
      rng_(config.seed) {
  KDD_CHECK(policy_ != nullptr);
  KDD_CHECK(config_.num_disks > 0);
  hdd_models_.reserve(config_.num_disks);
  for (std::uint32_t i = 0; i < config_.num_disks; ++i) {
    hdd_models_.emplace_back(config_.hdd);
  }
  hdd_free_.assign(config_.num_disks, 0);
  ssd_free_.assign(std::max<std::uint32_t>(1, config_.ssd.channels), 0);
  policy_->set_background_plan(&background_);
}

SimTime EventSimulator::serve_op(const DeviceOp& op, SimTime t) {
  if (op.target == DeviceOp::Target::kHdd) {
    KDD_CHECK(op.device < hdd_free_.size());
    const SimTime start = std::max(t, hdd_free_[op.device]);
    const SimTime dur = hdd_models_[op.device].service_time(op.kind, op.page, 1, rng_);
    hdd_free_[op.device] = start + dur;
    if (op.device < result_.hdd_busy_us.size()) result_.hdd_busy_us[op.device] += dur;
    return start + dur;
  }
  // SSD: pick the earliest-free channel.
  std::size_t best = 0;
  for (std::size_t c = 1; c < ssd_free_.size(); ++c) {
    if (ssd_free_[c] < ssd_free_[best]) best = c;
  }
  const SimTime start = std::max(t, ssd_free_[best]);
  const SimTime dur = ssd_model_.service_time(op.kind, rng_);
  ssd_free_[best] = start + dur;
  result_.ssd_busy_us += dur;
  return start + dur;
}

SimTime EventSimulator::issue_phase(InFlight& inflight, SimTime t) {
  SimTime end = t + kNullLatencyUs;
  if (!inflight.plan.phases().empty()) {
    end = t;
    for (const DeviceOp& op : inflight.plan.phases()[inflight.phase]) {
      end = std::max(end, serve_op(op, t));
    }
    ++inflight.phase;
  }
  // Transient-error retry backoff (blockdev/retry.hpp) is charged once, when
  // the request's final phase completes: the request is not done until its
  // retries have waited out their deterministic backoff.
  if (inflight.phase >= inflight.plan.phases().size()) {
    end += inflight.plan.retry_delay_us();
  }
  return end;
}

std::uint64_t EventSimulator::add_inflight(InFlight inflight) {
  inflight.live = true;
  if (!free_ids_.empty()) {
    const std::uint64_t id = free_ids_.back();
    free_ids_.pop_back();
    inflight_[id] = std::move(inflight);
    return id;
  }
  inflight_.push_back(std::move(inflight));
  return inflight_.size() - 1;
}

IoPlan EventSimulator::execute_request(const TraceRecord& rec) {
  IoPlan combined;
  if (write_scratch_.empty()) {
    write_scratch_ = make_page();
    read_scratch_ = make_page();
  }
  for (std::uint32_t i = 0; i < rec.pages; ++i) {
    IoPlan page_plan;
    if (rec.is_read) {
      policy_->read(rec.page + i, read_scratch_, &page_plan);
    } else {
      // Perturb a short run so prototype-mode deltas are realistic rather
      // than all-zero (counter-mode policies ignore the contents entirely).
      const std::size_t at = rng_.next_below(kPageSize - 64);
      for (std::size_t b = 0; b < 64; ++b) {
        write_scratch_[at + b] = static_cast<std::uint8_t>(rng_.next_u64());
      }
      policy_->write(rec.page + i, write_scratch_, &page_plan);
    }
    combined.merge_parallel(page_plan);
  }
  return combined;
}

void EventSimulator::schedule_background(SimTime now) {
  if (background_.empty()) return;
  InFlight bg;
  bg.plan = std::move(background_);
  background_.clear();
  bg.arrival = now;
  bg.record = false;
  const std::uint64_t id = add_inflight(std::move(bg));
  events_.push({now, id});
}

SimResult EventSimulator::run_open_loop(const Trace& trace) {
  result_ = SimResult{};
  result_.hdd_busy_us.assign(hdd_free_.size(), 0);
  SimTime prev_arrival = 0;

  auto step = [&](const Event& ev) {
    InFlight& f = inflight_[ev.req];
    const bool had_phases = !f.plan.phases().empty();
    const SimTime end = issue_phase(f, ev.time);
    if (had_phases && f.phase < f.plan.phases().size()) {
      events_.push({end, ev.req});
      return;
    }
    if (f.record) {
      result_.latency.record(end - f.arrival);
      ++result_.requests;
      if (observer_) observer_(end, end - f.arrival);
    }
    result_.makespan_us = std::max(result_.makespan_us, end);
    f.live = false;
    f.plan.clear();
    free_ids_.push_back(ev.req);
  };

  for (const TraceRecord& rec : trace.records) {
    while (!events_.empty() && events_.top().time <= rec.time_us) {
      const Event ev = events_.top();
      events_.pop();
      step(ev);
    }
    if (rec.time_us > prev_arrival &&
        rec.time_us - prev_arrival > config_.idle_threshold_us) {
      // Quiet period: the background cleaner wakes up (Section III-D).
      policy_->on_idle(&background_);
      schedule_background(prev_arrival + config_.idle_threshold_us);
    }
    InFlight f;
    f.plan = execute_request(rec);
    f.arrival = rec.time_us;
    schedule_background(rec.time_us);
    const std::uint64_t id = add_inflight(std::move(f));
    events_.push({rec.time_us, id});
    prev_arrival = rec.time_us;
  }
  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    step(ev);
  }
  return result_;
}

SimResult EventSimulator::run_closed_loop(ZipfWorkload& workload,
                                          std::uint32_t threads) {
  result_ = SimResult{};
  result_.hdd_busy_us.assign(hdd_free_.size(), 0);
  KDD_CHECK(threads > 0);

  auto launch = [&](std::uint32_t worker, SimTime when) {
    if (workload.done()) return;
    TraceRecord rec = workload.next();
    rec.time_us = when;
    InFlight f;
    f.plan = execute_request(rec);
    f.arrival = when;
    f.worker = worker;
    schedule_background(when);
    const std::uint64_t id = add_inflight(std::move(f));
    events_.push({when, id});
  };

  for (std::uint32_t w = 0; w < threads; ++w) launch(w, 0);

  while (!events_.empty()) {
    const Event ev = events_.top();
    events_.pop();
    InFlight& f = inflight_[ev.req];
    const bool had_phases = !f.plan.phases().empty();
    const SimTime end = issue_phase(f, ev.time);
    if (had_phases && f.phase < f.plan.phases().size()) {
      events_.push({end, ev.req});
      continue;
    }
    const bool record = f.record;
    const std::uint32_t worker = f.worker;
    if (record) {
      result_.latency.record(end - f.arrival);
      ++result_.requests;
      if (observer_) observer_(end, end - f.arrival);
    }
    result_.makespan_us = std::max(result_.makespan_us, end);
    f.live = false;
    f.plan.clear();
    free_ids_.push_back(ev.req);
    if (record) launch(worker, end);  // the worker issues its next request
  }
  return result_;
}

}  // namespace kdd
