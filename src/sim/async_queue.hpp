// Simulated completion queue for the BlockDevice::submit interface.
//
// The data plane stays synchronous and exact (parity, deltas and recovery
// are verified on real bytes), so a simulated async device executes the
// read/write immediately but *defers the completion callback*: the result is
// scheduled on a SimCompletionQueue at now + service_time, and advance()
// fires completions in simulated-time order. That gives the submit-and-
// complete request engine the property that matters for queue-depth sweeps —
// completions reorder according to the device timing model, not submission
// order — without forking the data plane.
//
// MemDevice / FileDevice keep BlockDevice's default synchronous submit(),
// which completes inline and is trivially correct (their "service time" is
// the call itself).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "blockdev/block_device.hpp"
#include "blockdev/timing.hpp"
#include "common/rng.hpp"

namespace kdd {

/// Time-ordered pending completions, driven by an externally-advanced
/// simulated clock (µs, same unit as the timing models). Ties fire in
/// submission order (a monotone sequence number breaks them), so replaying
/// the same submissions always completes in the same order.
class SimCompletionQueue {
 public:
  explicit SimCompletionQueue(SimTime start_us = 0) : now_us_(start_us) {}

  SimTime now() const { return now_us_; }
  std::size_t pending() const { return heap_.size(); }
  /// Due time of the earliest pending completion (0 when none are pending).
  SimTime next_due() const { return heap_.empty() ? 0 : heap_.top().due_us; }

  /// Schedules `cb(st)` to fire once the clock reaches `due_us`.
  void schedule(SimTime due_us, IoStatus st, AsyncCallback cb);

  /// Advances the clock to `now_us` (clamped to never move backwards) and
  /// fires every completion due by then, in (time, submission) order.
  /// Returns the number of completions fired.
  std::size_t advance_to(SimTime now_us);

  /// Fires everything still pending (advances the clock to the last due
  /// time). Returns the number of completions fired.
  std::size_t drain();

 private:
  struct Pending {
    SimTime due_us = 0;
    std::uint64_t seq = 0;
    // Shared-ptr-free ordering: callbacks live in slots_, the heap holds ids.
    std::size_t slot = 0;
    bool operator>(const Pending& other) const {
      if (due_us != other.due_us) return due_us > other.due_us;
      return seq > other.seq;
    }
  };
  struct Slot {
    IoStatus st = IoStatus::kOk;
    AsyncCallback cb;
  };

  SimTime now_us_;
  std::uint64_t next_seq_ = 0;
  std::vector<Slot> slots_;
  std::vector<std::size_t> free_slots_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>>
      heap_;
};

/// BlockDevice adapter that executes I/O on the wrapped device immediately
/// (exact data plane) but completes submit() through a SimCompletionQueue at
/// now + service_time, per an attached timing model. Synchronous read/write
/// pass straight through, so a device can serve both interfaces at once.
/// Neither the inner device nor the queue is owned.
class SimAsyncDevice final : public BlockDevice {
 public:
  /// Service-time model for one I/O (µs). The bundled factories below bind
  /// the calibrated HDD/SSD models from blockdev/timing.hpp.
  using ServiceModel = std::function<SimTime(AsyncIo::Op, Lba)>;

  SimAsyncDevice(BlockDevice* inner, SimCompletionQueue* cq, ServiceModel model)
      : inner_(inner), cq_(cq), model_(std::move(model)) {}

  IoStatus read(Lba page, std::span<std::uint8_t> out) override {
    return inner_->read(page, out);
  }
  IoStatus write(Lba page, std::span<const std::uint8_t> data) override {
    return inner_->write(page, data);
  }
  std::uint64_t num_pages() const override { return inner_->num_pages(); }
  void trim(Lba page) override { inner_->trim(page); }
  void fail() override { inner_->fail(); }
  void repair() override { inner_->repair(); }
  bool failed() const override { return inner_->failed(); }

  void submit(const AsyncIo& io, AsyncCallback cb) override;

 private:
  BlockDevice* inner_;
  SimCompletionQueue* cq_;
  ServiceModel model_;
};

/// Binds an HddTimingModel (stateful: models the head position) to a
/// SimAsyncDevice service model. `model` and `rng` are not owned.
SimAsyncDevice::ServiceModel hdd_service_model(HddTimingModel* model, Rng* rng);

/// Binds an SsdTimingModel to a SimAsyncDevice service model.
SimAsyncDevice::ServiceModel ssd_service_model(const SsdTimingModel* model,
                                               Rng* rng);

}  // namespace kdd
