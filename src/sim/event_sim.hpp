// Discrete-event performance simulator.
//
// Policies execute their data plane synchronously (so cache state and RAID
// contents are always exact) and hand back an IoPlan — the phased set of
// device I/Os the request performed. This simulator replays those plans
// against per-device FCFS servers with calibrated service-time models:
//  * each HDD is one server with a seek/rotate/transfer model,
//  * the SSD is `channels` parallel servers (internal parallelism),
//  * background work (cleaning-thread parity updates, metadata commits) is
//    scheduled on the same devices but never charged to a request's latency.
//
// Two drivers mirror Section IV-B: open-loop trace replay (requests issued at
// their timestamps) and closed-loop with N outstanding requests (FIO-style).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "blockdev/timing.hpp"
#include "cache/policy.hpp"
#include "common/stats.hpp"
#include "trace/trace.hpp"
#include "trace/zipf_workload.hpp"

namespace kdd {

struct SimConfig {
  HddTimingConfig hdd;
  SsdTimingConfig ssd;
  std::uint32_t num_disks = 5;
  /// Arrival gap (open loop) that wakes the background cleaner.
  SimTime idle_threshold_us = 500 * kUsPerMs;
  std::uint64_t seed = 99;
};

struct SimResult {
  LatencyHistogram latency;
  SimTime makespan_us = 0;
  std::uint64_t requests = 0;
  /// Busy time per HDD (index) and for the SSD (aggregate across channels).
  std::vector<SimTime> hdd_busy_us;
  SimTime ssd_busy_us = 0;

  double mean_response_ms() const { return latency.mean_us() / 1000.0; }
  double throughput_iops() const {
    return makespan_us ? static_cast<double>(requests) /
                             (static_cast<double>(makespan_us) / 1e6)
                       : 0.0;
  }
  /// Utilisation of the busiest disk in [0, 1].
  double max_hdd_utilization() const {
    SimTime busiest = 0;
    for (const SimTime b : hdd_busy_us) busiest = std::max(busiest, b);
    return makespan_us ? static_cast<double>(busiest) /
                             static_cast<double>(makespan_us)
                       : 0.0;
  }
};

class EventSimulator {
 public:
  EventSimulator(const SimConfig& config, CachePolicy* policy);

  /// Replays `trace` open-loop (issue at timestamp). Multi-page records are
  /// split into per-page policy calls whose device ops proceed in parallel.
  SimResult run_open_loop(const Trace& trace);

  /// Closed-loop: `threads` workers issue back-to-back until the workload is
  /// exhausted.
  SimResult run_closed_loop(ZipfWorkload& workload, std::uint32_t threads);

  /// Called once per recorded (foreground) request completion with the
  /// simulated completion time and the request's latency, both in µs. The
  /// telemetry harness uses this to bucket wear/latency samples by sim time
  /// without re-running the policy. Background work never fires it.
  using RequestObserver = std::function<void(SimTime now, SimTime latency_us)>;
  void set_request_observer(RequestObserver fn) { observer_ = std::move(fn); }

 private:
  struct InFlight {
    IoPlan plan;
    std::size_t phase = 0;
    SimTime arrival = 0;
    bool record = true;   ///< contributes to latency stats
    std::uint32_t worker = 0;  ///< closed-loop continuation
    bool live = false;
  };
  struct Event {
    SimTime time;
    std::uint64_t req;
    bool operator>(const Event& other) const { return time > other.time; }
  };

  /// Issues the request's current phase at time `t`; returns the phase end.
  SimTime issue_phase(InFlight& inflight, SimTime t);
  SimTime serve_op(const DeviceOp& op, SimTime t);
  /// Executes the policy for one (possibly multi-page) request; returns the
  /// combined foreground plan and schedules any background work at `now`.
  IoPlan execute_request(const TraceRecord& rec);
  void schedule_background(SimTime now);
  std::uint64_t add_inflight(InFlight inflight);

  SimConfig config_;
  CachePolicy* policy_;
  Page write_scratch_;  ///< data fed to real-mode policies (content varies
  Page read_scratch_;   ///< a little so deltas are non-trivial)
  std::vector<HddTimingModel> hdd_models_;
  std::vector<SimTime> hdd_free_;
  SsdTimingModel ssd_model_;
  std::vector<SimTime> ssd_free_;
  Rng rng_;
  IoPlan background_;
  std::vector<InFlight> inflight_;
  std::vector<std::uint64_t> free_ids_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events_;
  SimResult result_;
  RequestObserver observer_;
};

}  // namespace kdd
