// Write-back SSD caching — implemented as a documented *non-goal* baseline.
//
// The paper's evaluation deliberately excludes write-back "because it cannot
// prevent data loss under SSD failures" (Section IV-A1). We implement it
// anyway so that claim is demonstrable: write-back acknowledges writes once
// they hit the SSD, so it has the best latency and low RAID traffic, but a
// cache-device failure loses every dirty page (RPO > 0) — see
// tests/test_writeback.cpp and the failure_drill example for the contrast
// with KDD's RPO = 0.
#pragma once

#include <unordered_set>

#include "cache/policy.hpp"

namespace kdd {

class WriteBackPolicy final : public BlockCacheBase {
 public:
  WriteBackPolicy(const PolicyConfig& config, const RaidGeometry& geo);
  WriteBackPolicy(const PolicyConfig& config, RaidArray* array, SsdModel* ssd);

  std::string name() const override { return "WB"; }

  IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan = nullptr) override;
  IoStatus write(Lba lba, std::span<const std::uint8_t> data,
                 IoPlan* plan = nullptr) override;
  void flush(IoPlan* plan = nullptr) override;
  void on_idle(IoPlan* plan = nullptr) override;

  std::uint64_t dirty_pages() const { return dirty_.size(); }

  /// Simulates a cache-device failure: the array keeps only what was flushed.
  /// Returns the number of dirty pages whose latest contents were lost.
  std::uint64_t fail_ssd_and_count_lost();

 private:
  /// Writes the dirty page back to RAID with a full parity update and marks
  /// it clean.
  void write_back_slot(std::uint32_t idx, IoPlan* plan);
  /// Stripe-aware write-back: when every data member of the page's parity
  /// group is cached dirty, the whole group goes out as one full-stripe
  /// write (no parity reads — the Section I "small writes can be reduced to
  /// full stripe writes" effect). Returns the number of slots cleaned.
  std::size_t write_back_group_of(std::uint32_t idx, IoPlan* plan);
  void maybe_flush_dirty(IoPlan* plan);
  std::uint32_t take_slot(std::uint32_t set, IoPlan* plan);

 public:
  std::uint64_t full_stripe_writebacks() const { return full_stripe_writebacks_; }

 private:
  std::uint64_t full_stripe_writebacks_ = 0;

  /// Slots holding dirty (newer-than-RAID) data. Dirty pages use state kOld
  /// (pinned out of the LRU) so the shared eviction path never drops them.
  std::unordered_set<std::uint32_t> dirty_;
};

}  // namespace kdd
