#include "policies/write_around.hpp"

#include "common/check.hpp"

namespace kdd {

WriteAroundPolicy::WriteAroundPolicy(const PolicyConfig& config,
                                     const RaidGeometry& geo)
    : BlockCacheBase(config, geo, 0,
                     plan_cache_layout(config, /*needs_metadata=*/false).cache_pages) {}

WriteAroundPolicy::WriteAroundPolicy(const PolicyConfig& config, RaidArray* array,
                                     SsdModel* ssd)
    : BlockCacheBase(config, array, ssd, 0,
                     plan_cache_layout(config, /*needs_metadata=*/false).cache_pages) {}

IoStatus WriteAroundPolicy::read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  if (idx != CacheSets::kNone) {
    ++stats_.read_hits;
    sets_.lru_touch(idx);
    return ssd_.read_data(idx, out, plan);
  }
  ++stats_.read_misses;
  const IoStatus st = raid_.read_page(lba, out, plan);
  if (st != IoStatus::kOk) return st;
  std::uint32_t slot = sets_.find_free(set);
  if (slot == CacheSets::kNone) slot = evict_lru_clean(set);
  KDD_CHECK(slot != CacheSets::kNone);
  ssd_.write_data(slot, SsdWriteKind::kReadFill, out, plan);
  sets_.slot(slot).lba = lba;
  sets_.set_state(slot, PageState::kClean);
  return IoStatus::kOk;
}

IoStatus WriteAroundPolicy::write(Lba lba, std::span<const std::uint8_t> data,
                                  IoPlan* plan) {
  // Writes never touch the SSD; a cached copy would go stale, so drop it.
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  if (idx != CacheSets::kNone) {
    ssd_.trim_data(idx);
    sets_.reset_slot(idx);
  }
  ++stats_.write_bypasses;
  return raid_.write_page(lba, data, plan);
}

}  // namespace kdd
