// Write-around SSD caching (Section II-B): writes bypass the cache entirely
// (any stale cached copy is invalidated); only read misses allocate. This
// minimises SSD wear but leaves the small-write penalty untouched and serves
// recently-written data from disk.
#pragma once

#include "cache/policy.hpp"

namespace kdd {

class WriteAroundPolicy final : public BlockCacheBase {
 public:
  WriteAroundPolicy(const PolicyConfig& config, const RaidGeometry& geo);
  WriteAroundPolicy(const PolicyConfig& config, RaidArray* array, SsdModel* ssd);

  std::string name() const override { return "WA"; }

  IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) override;
  IoStatus write(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan) override;
};

}  // namespace kdd
