// Write-through SSD caching (Section II-B): every write updates both the
// cache and the RAID array with a full parity update; reads are served from
// the cache when possible. RPO = 0 under SSD failure, but the small-write
// penalty is untouched and every write costs an SSD page program.
#pragma once

#include "cache/policy.hpp"

namespace kdd {

class WriteThroughPolicy final : public BlockCacheBase {
 public:
  WriteThroughPolicy(const PolicyConfig& config, const RaidGeometry& geo);
  WriteThroughPolicy(const PolicyConfig& config, RaidArray* array, SsdModel* ssd);

  std::string name() const override { return "WT"; }

  IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) override;
  IoStatus write(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan) override;

 private:
  /// Allocates a slot for `lba` (free slot or LRU-clean eviction).
  /// Returns kNone when the set is exhausted (never happens for WT: every
  /// resident page is clean, hence evictable).
  std::uint32_t take_slot(std::uint32_t set);
};

}  // namespace kdd
