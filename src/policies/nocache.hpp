// "Nossd" baseline: every request goes straight to the RAID array
// (Section IV-B's no-cache comparison point).
#pragma once

#include "cache/policy.hpp"

namespace kdd {

class NoCachePolicy final : public CachePolicy {
 public:
  /// Counter mode.
  explicit NoCachePolicy(const RaidGeometry& geo) : raid_(geo) {}
  /// Prototype mode.
  explicit NoCachePolicy(RaidArray* array) : raid_(array) {}

  std::string name() const override { return "Nossd"; }

  IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) override {
    ++stats_.read_misses;
    return raid_.read_page(lba, out, plan);
  }

  IoStatus write(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan) override {
    ++stats_.write_misses;
    return raid_.write_page(lba, data, plan);
  }

  CacheStats stats() const override {
    CacheStats s = stats_;
    s.disk_reads = raid_.disk_reads();
    s.disk_writes = raid_.disk_writes();
    return s;
  }

  RaidBackend& raid() { return raid_; }

 private:
  RaidBackend raid_;
  CacheStats stats_;
};

}  // namespace kdd
