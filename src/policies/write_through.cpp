#include "policies/write_through.hpp"

#include "common/check.hpp"

namespace kdd {

WriteThroughPolicy::WriteThroughPolicy(const PolicyConfig& config,
                                       const RaidGeometry& geo)
    : BlockCacheBase(config, geo, 0,
                     plan_cache_layout(config, /*needs_metadata=*/false).cache_pages) {}

WriteThroughPolicy::WriteThroughPolicy(const PolicyConfig& config, RaidArray* array,
                                       SsdModel* ssd)
    : BlockCacheBase(config, array, ssd, 0,
                     plan_cache_layout(config, /*needs_metadata=*/false).cache_pages) {}

std::uint32_t WriteThroughPolicy::take_slot(std::uint32_t set) {
  std::uint32_t idx = sets_.find_free(set);
  if (idx == CacheSets::kNone) idx = evict_lru_clean(set);
  return idx;
}

IoStatus WriteThroughPolicy::read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  if (idx != CacheSets::kNone) {
    ++stats_.read_hits;
    sets_.lru_touch(idx);
    return ssd_.read_data(idx, out, plan);
  }
  ++stats_.read_misses;
  const IoStatus st = raid_.read_page(lba, out, plan);
  if (st != IoStatus::kOk) return st;
  const std::uint32_t slot = take_slot(set);
  KDD_CHECK(slot != CacheSets::kNone);
  ssd_.write_data(slot, SsdWriteKind::kReadFill, out, plan);
  sets_.slot(slot).lba = lba;
  sets_.set_state(slot, PageState::kClean);
  return IoStatus::kOk;
}

IoStatus WriteThroughPolicy::write(Lba lba, std::span<const std::uint8_t> data,
                                   IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  const IoStatus st = raid_.write_page(lba, data, plan);
  if (st != IoStatus::kOk) return st;
  if (idx != CacheSets::kNone) {
    ++stats_.write_hits;
    sets_.lru_touch(idx);
    ssd_.write_data(idx, SsdWriteKind::kWriteUpdate, data, plan);
    return IoStatus::kOk;
  }
  ++stats_.write_misses;
  const std::uint32_t slot = take_slot(set);
  KDD_CHECK(slot != CacheSets::kNone);
  ssd_.write_data(slot, SsdWriteKind::kWriteAlloc, data, plan);
  sets_.slot(slot).lba = lba;
  sets_.set_state(slot, PageState::kClean);
  return IoStatus::kOk;
}

}  // namespace kdd
