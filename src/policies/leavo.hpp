// LeavO (Lee et al., SAC'15), as characterised in Sections I/II-B of the
// paper: write-through-based caching that postpones parity updates by keeping
// both the old and the new version of a written page in the SSD. The parity
// of the affected stripe goes stale and is repaired by a background cleaner
// using old XOR new as the delta.
//
// Costs relative to KDD (what Figures 5-8 measure):
//  * every delayed write stores a full extra page (vs. a compressed delta),
//  * the pinned version pairs halve the effective capacity for dirty data,
//  * cache metadata is persisted in a direct-mapped on-SSD table, so a
//    buffer flush dirties one table page per 256-slot region it touches —
//    far worse batching than KDD's circular log.
#pragma once

#include <unordered_map>

#include "cache/nvram.hpp"
#include "cache/policy.hpp"

namespace kdd {

class LeavOPolicy final : public BlockCacheBase {
 public:
  LeavOPolicy(const PolicyConfig& config, const RaidGeometry& geo);
  LeavOPolicy(const PolicyConfig& config, RaidArray* array, SsdModel* ssd);

  std::string name() const override { return "LeavO"; }

  IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) override;
  IoStatus write(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan) override;
  void flush(IoPlan* plan) override;
  void on_idle(IoPlan* plan) override;

  std::uint64_t pinned_pages() const { return pinned_pages_; }

 protected:
  void on_evict_slot(std::uint32_t idx) override;

 private:
  static constexpr std::size_t kEntriesPerTablePage =
      kPageSize / MetadataEntry::kSerializedSize;

  /// Records that slot `idx`'s persistent mapping changed; flushes the buffer
  /// to the direct-mapped table when full.
  void note_metadata(std::uint32_t idx, IoPlan* plan);
  void flush_metadata(IoPlan* plan);

  std::uint32_t take_slot(std::uint32_t set);
  void maybe_clean(IoPlan* plan);
  void clean_group(GroupId g, IoPlan* plan);

  MetadataBuffer meta_buffer_;
  std::unordered_map<GroupId, std::uint32_t> dirty_groups_;  ///< pairs per group
  std::uint64_t pinned_pages_ = 0;  ///< kOldVersion + kNewVersion slots
};

}  // namespace kdd
