#include "policies/leavo.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/check.hpp"

namespace kdd {

namespace {

CacheLayoutPlan leavo_layout(const PolicyConfig& config) {
  return plan_cache_layout(config, /*needs_metadata=*/true);
}

}  // namespace

LeavOPolicy::LeavOPolicy(const PolicyConfig& config, const RaidGeometry& geo)
    : BlockCacheBase(config, geo, leavo_layout(config).metadata_pages,
                     leavo_layout(config).cache_pages),
      meta_buffer_(config.metadata_buffer_entries) {}

LeavOPolicy::LeavOPolicy(const PolicyConfig& config, RaidArray* array, SsdModel* ssd)
    : BlockCacheBase(config, array, ssd, leavo_layout(config).metadata_pages,
                     leavo_layout(config).cache_pages),
      meta_buffer_(config.metadata_buffer_entries) {}

void LeavOPolicy::note_metadata(std::uint32_t idx, IoPlan* plan) {
  MetadataEntry e;
  e.daz_idx = idx;
  e.lba_raid = sets_.slot(idx).lba;
  e.state = sets_.slot(idx).state;
  meta_buffer_.put(e);
  if (meta_buffer_.full()) flush_metadata(plan);
}

void LeavOPolicy::flush_metadata(IoPlan* plan) {
  if (meta_buffer_.empty()) return;
  const std::vector<MetadataEntry> entries = meta_buffer_.drain();
  // Direct-mapped table: slot idx lives in table page idx / entries-per-page.
  // One write per *distinct* dirty table page — with scattered slots this
  // approaches one page write per entry (LeavO's metadata weakness).
  std::unordered_set<std::uint64_t> dirty_pages;
  for (const MetadataEntry& e : entries) {
    dirty_pages.insert(e.daz_idx / kEntriesPerTablePage);
  }
  for (std::uint64_t page : dirty_pages) {
    KDD_CHECK(page < ssd_.metadata_pages());
    ssd_.write_metadata(page, {}, plan);
  }
}

void LeavOPolicy::on_evict_slot(std::uint32_t idx) {
  // Persist the free transition so the on-SSD table stays authoritative.
  MetadataEntry e;
  e.daz_idx = idx;
  e.lba_raid = kInvalidLba;
  e.state = PageState::kFree;
  meta_buffer_.put(e);
  if (meta_buffer_.full()) flush_metadata(nullptr);
}

std::uint32_t LeavOPolicy::take_slot(std::uint32_t set) {
  std::uint32_t idx = sets_.find_free(set);
  if (idx == CacheSets::kNone) idx = evict_lru_clean(set);
  return idx;
}

IoStatus LeavOPolicy::read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  if (idx != CacheSets::kNone) {
    ++stats_.read_hits;
    if (sets_.slot(idx).state == PageState::kClean) sets_.lru_touch(idx);
    return ssd_.read_data(idx, out, plan);
  }
  ++stats_.read_misses;
  const IoStatus st = raid_.read_page(lba, out, plan);
  if (st != IoStatus::kOk) return st;
  const std::uint32_t slot = take_slot(set);
  if (slot == CacheSets::kNone) return IoStatus::kOk;  // set pinned solid: bypass
  ssd_.write_data(slot, SsdWriteKind::kReadFill, out, plan);
  sets_.slot(slot).lba = lba;
  sets_.set_state(slot, PageState::kClean);
  note_metadata(slot, plan);
  return IoStatus::kOk;
}

IoStatus LeavOPolicy::write(Lba lba, std::span<const std::uint8_t> data, IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);

  if (idx == CacheSets::kNone) {
    // Write miss: conventional parity update + allocation.
    ++stats_.write_misses;
    const IoStatus st = raid_.write_page(lba, data, plan);
    if (st != IoStatus::kOk) return st;
    const std::uint32_t slot = take_slot(set);
    if (slot == CacheSets::kNone) {
      ++stats_.write_bypasses;
      --stats_.write_misses;
      return IoStatus::kOk;
    }
    ssd_.write_data(slot, SsdWriteKind::kWriteAlloc, data, plan);
    sets_.slot(slot).lba = lba;
    sets_.set_state(slot, PageState::kClean);
    note_metadata(slot, plan);
    return IoStatus::kOk;
  }

  ++stats_.write_hits;
  CacheSets::CacheSlot& slot = sets_.slot(idx);

  if (slot.state == PageState::kNewVersion) {
    // Already a dirty pair: overwrite the new version; the pair's mapping is
    // unchanged, so no metadata update is needed.
    ssd_.write_data(idx, SsdWriteKind::kWriteUpdate, data, plan);
    const IoStatus st = raid_.write_page_nopar(lba, data, plan);
    maybe_clean(plan);
    return st;
  }

  KDD_DCHECK(slot.state == PageState::kClean);
  // Pin idx first so the partner allocation cannot evict it (it would be an
  // LRU candidate otherwise).
  sets_.set_state(idx, PageState::kOldVersion);
  const std::uint32_t partner = take_slot(set);
  if (partner == CacheSets::kNone) {
    // No room for a second version: degrade to write-through for this write.
    sets_.set_state(idx, PageState::kClean);
    ssd_.write_data(idx, SsdWriteKind::kWriteUpdate, data, plan);
    sets_.lru_touch(idx);
    return raid_.write_page(lba, data, plan);
  }
  // Pin the pair: idx keeps the old version, partner takes the new one.
  ssd_.write_data(partner, SsdWriteKind::kWriteUpdate, data, plan);
  sets_.slot(partner).lba = lba;
  sets_.set_state(partner, PageState::kNewVersion);
  sets_.slot(idx).partner = partner;
  sets_.slot(partner).partner = idx;
  pinned_pages_ += 2;
  ++dirty_groups_[raid_.layout().group_of(lba)];
  note_metadata(idx, plan);
  note_metadata(partner, plan);
  const IoStatus st = raid_.write_page_nopar(lba, data, plan);
  maybe_clean(plan);
  return st;
}

void LeavOPolicy::maybe_clean(IoPlan* plan) {
  const auto high = static_cast<std::uint64_t>(
      config_.clean_high_watermark * static_cast<double>(sets_.pages()));
  if (pinned_pages_ <= high) return;
  IoPlan* clean_plan = bg_or(plan);  // cleaning runs in the background thread
  const auto low = static_cast<std::uint64_t>(
      config_.clean_low_watermark * static_cast<double>(sets_.pages()));
  while (pinned_pages_ > low && !dirty_groups_.empty()) {
    clean_group(dirty_groups_.begin()->first, clean_plan);
  }
  ++stats_.cleanings;
}

void LeavOPolicy::clean_group(GroupId g, IoPlan* plan) {
  const std::uint32_t dd = raid_.layout().geometry().data_disks();
  const std::uint32_t set = set_for(raid_.layout().group_member(g, 0));
  const std::uint32_t base = set * sets_.ways();

  // Collect the dirty pairs of this group (new-version slots).
  std::vector<std::uint32_t> new_slots;
  for (std::uint32_t w = 0; w < sets_.ways(); ++w) {
    const CacheSets::CacheSlot& s = sets_.slot(base + w);
    if (s.state == PageState::kNewVersion &&
        raid_.layout().group_of(s.lba) == g) {
      new_slots.push_back(base + w);
    }
  }
  KDD_CHECK(!new_slots.empty());

  // Reconstruct-write only when every data member of the stripe is cached.
  bool all_cached = true;
  std::vector<std::uint32_t> member_slots(dd, CacheSets::kNone);
  for (std::uint32_t k = 0; k < dd; ++k) {
    const Lba member = raid_.layout().group_member(g, k);
    member_slots[k] = sets_.find_data(set, member);
    if (member_slots[k] == CacheSets::kNone) {
      all_cached = false;
      break;
    }
  }

  const bool real = ssd_.real();
  if (all_cached) {
    std::vector<Page> data(dd);
    std::vector<const Page*> ptrs(dd, nullptr);
    for (std::uint32_t k = 0; k < dd; ++k) {
      if (real) data[k] = make_page();
      ssd_.read_data(member_slots[k], real ? std::span<std::uint8_t>(data[k])
                                           : std::span<std::uint8_t>{},
                     plan);
      ptrs[k] = &data[k];
    }
    const IoStatus st = raid_.update_parity_reconstruct_cached(g, ptrs, plan);
    KDD_CHECK(st == IoStatus::kOk);
  } else {
    std::vector<Page> diffs(new_slots.size());
    std::vector<GroupDelta> deltas;
    deltas.reserve(new_slots.size());
    for (std::size_t i = 0; i < new_slots.size(); ++i) {
      const CacheSets::CacheSlot& ns = sets_.slot(new_slots[i]);
      if (real) {
        Page old_v = make_page();
        Page new_v = make_page();
        ssd_.read_data(ns.partner, old_v, plan);
        ssd_.read_data(new_slots[i], new_v, plan);
        diffs[i] = xor_pages(old_v, new_v);
      } else {
        ssd_.read_data(ns.partner, {}, plan);
        ssd_.read_data(new_slots[i], {}, plan);
      }
      deltas.push_back({raid_.layout().index_in_group(ns.lba), &diffs[i]});
    }
    const IoStatus st = raid_.update_parity_rmw(g, deltas, plan);
    KDD_CHECK(st == IoStatus::kOk);
  }

  // Reclaim the pair outright (matching the paper's characterisation that
  // LeavO's redundant versions depress its hit ratio: cleaned blocks leave
  // the cache and must be re-fetched on the next miss).
  for (std::uint32_t ns : new_slots) {
    const std::uint32_t old_slot = sets_.slot(ns).partner;
    KDD_CHECK(old_slot != CacheSets::kNone);
    for (const std::uint32_t victim : {old_slot, ns}) {
      ssd_.trim_data(victim);
      MetadataEntry free_entry;
      free_entry.daz_idx = victim;
      free_entry.state = PageState::kFree;
      meta_buffer_.put(free_entry);
      sets_.reset_slot(victim);
    }
    pinned_pages_ -= 2;
  }
  stats_.groups_cleaned += 1;
  dirty_groups_.erase(g);
  if (meta_buffer_.full()) flush_metadata(plan);
}

void LeavOPolicy::flush(IoPlan* plan) {
  while (!dirty_groups_.empty()) clean_group(dirty_groups_.begin()->first, plan);
  flush_metadata(plan);
}

void LeavOPolicy::on_idle(IoPlan* plan) {
  while (!dirty_groups_.empty()) clean_group(dirty_groups_.begin()->first, plan);
}

}  // namespace kdd
