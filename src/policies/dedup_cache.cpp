#include "policies/dedup_cache.hpp"

#include "common/check.hpp"

namespace kdd {

DedupCachePolicy::DedupCachePolicy(const PolicyConfig& config, RaidArray* array,
                                   SsdModel* ssd)
    : config_(config),
      ssd_(0, plan_cache_layout(config, /*needs_metadata=*/false).cache_pages, ssd),
      raid_(array) {
  free_slots_.reserve(ssd_.cache_pages());
  for (std::uint64_t i = ssd_.cache_pages(); i-- > 0;) {
    free_slots_.push_back(static_cast<std::uint32_t>(i));
  }
}

DedupCachePolicy::Fingerprint DedupCachePolicy::fingerprint(
    std::span<const std::uint8_t> data) {
  Fingerprint f{1469598103934665603ull, 0x2d358dccaa6c78a5ull};
  for (const std::uint8_t b : data) {
    f.lo = (f.lo ^ b) * 1099511628211ull;
    f.hi = (f.hi ^ b) * 0x100000001b3ull ^ (f.hi >> 29);
  }
  return f;
}

void DedupCachePolicy::lru_touch(Lba lba) {
  auto& entry = lba_index_.at(lba);
  lru_.erase(entry.lru_pos);
  lru_.push_front(lba);
  entry.lru_pos = lru_.begin();
}

void DedupCachePolicy::unmap(Lba lba) {
  const auto it = lba_index_.find(lba);
  if (it == lba_index_.end()) return;
  const auto fp_it = fp_index_.find(it->second.fp);
  KDD_CHECK(fp_it != fp_index_.end() && fp_it->second.refs > 0);
  if (--fp_it->second.refs == 0) {
    ssd_.trim_data(fp_it->second.slot);
    slot_to_fp_.erase(fp_it->second.slot);
    free_slots_.push_back(fp_it->second.slot);
    fp_index_.erase(fp_it);
  }
  lru_.erase(it->second.lru_pos);
  lba_index_.erase(it);
}

void DedupCachePolicy::evict_lru() {
  KDD_CHECK(!lru_.empty());
  unmap(lru_.back());
}

void DedupCachePolicy::insert(Lba lba, std::span<const std::uint8_t> data,
                              SsdWriteKind kind, IoPlan* plan) {
  KDD_CHECK(!data.empty());  // dedup requires real contents
  unmap(lba);
  // One LBA mapping per slot at worst, so bounding mappings by the slot pool
  // guarantees a free slot exists whenever a new fingerprint shows up.
  while (lba_index_.size() >= ssd_.cache_pages()) evict_lru();

  const Fingerprint fp = fingerprint(data);
  auto [fp_it, inserted] = fp_index_.try_emplace(fp);
  if (inserted) {
    KDD_CHECK(!free_slots_.empty());
    fp_it->second.slot = free_slots_.back();
    free_slots_.pop_back();
    slot_to_fp_[fp_it->second.slot] = fp;
    ssd_.write_data(fp_it->second.slot, kind, data, plan);
  } else {
    ++dedup_hits_;  // contents already resident: no flash program needed
  }
  ++fp_it->second.refs;
  lru_.push_front(lba);
  lba_index_[lba] = {fp, lru_.begin()};
}

IoStatus DedupCachePolicy::read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const auto it = lba_index_.find(lba);
  if (it != lba_index_.end()) {
    ++stats_.read_hits;
    lru_touch(lba);
    return ssd_.read_data(fp_index_.at(it->second.fp).slot, out, plan);
  }
  ++stats_.read_misses;
  const IoStatus st = raid_.read_page(lba, out, plan);
  if (st != IoStatus::kOk) return st;
  insert(lba, out, SsdWriteKind::kReadFill, plan);
  return IoStatus::kOk;
}

IoStatus DedupCachePolicy::write(Lba lba, std::span<const std::uint8_t> data,
                                 IoPlan* plan) {
  if (lba_index_.contains(lba)) {
    ++stats_.write_hits;
  } else {
    ++stats_.write_misses;
  }
  const IoStatus st = raid_.write_page(lba, data, plan);  // write-through
  if (st != IoStatus::kOk) return st;
  insert(lba, data, SsdWriteKind::kWriteUpdate, plan);
  return IoStatus::kOk;
}

CacheStats DedupCachePolicy::stats() const {
  CacheStats s = stats_;
  ssd_.export_stats(s);
  s.disk_reads = raid_.disk_reads();
  s.disk_writes = raid_.disk_writes();
  return s;
}

}  // namespace kdd
