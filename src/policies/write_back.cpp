#include "policies/write_back.hpp"

#include <vector>

#include "common/check.hpp"

namespace kdd {

WriteBackPolicy::WriteBackPolicy(const PolicyConfig& config, const RaidGeometry& geo)
    : BlockCacheBase(config, geo, 0,
                     plan_cache_layout(config, /*needs_metadata=*/false).cache_pages) {}

WriteBackPolicy::WriteBackPolicy(const PolicyConfig& config, RaidArray* array,
                                 SsdModel* ssd)
    : BlockCacheBase(config, array, ssd, 0,
                     plan_cache_layout(config, /*needs_metadata=*/false).cache_pages) {}

std::uint32_t WriteBackPolicy::take_slot(std::uint32_t set, IoPlan* plan) {
  std::uint32_t idx = sets_.find_free(set);
  if (idx == CacheSets::kNone) idx = evict_lru_clean(set);
  if (idx == CacheSets::kNone) {
    // The set is packed with dirty pages: write one back synchronously.
    const std::uint32_t base = set * sets_.ways();
    for (std::uint32_t w = 0; w < sets_.ways(); ++w) {
      if (sets_.slot(base + w).state == PageState::kOld) {
        write_back_slot(base + w, plan);
        ssd_.trim_data(base + w);
        sets_.reset_slot(base + w);
        return base + w;
      }
    }
  }
  return idx;
}

IoStatus WriteBackPolicy::read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  const std::uint32_t idx = sets_.find_data(set, lba);
  if (idx != CacheSets::kNone) {
    ++stats_.read_hits;
    if (sets_.slot(idx).state == PageState::kClean) sets_.lru_touch(idx);
    return ssd_.read_data(idx, out, plan);
  }
  ++stats_.read_misses;
  const IoStatus st = raid_.read_page(lba, out, plan);
  if (st != IoStatus::kOk) return st;
  const std::uint32_t slot = take_slot(set, plan);
  if (slot == CacheSets::kNone) return IoStatus::kOk;
  ssd_.write_data(slot, SsdWriteKind::kReadFill, out, plan);
  sets_.slot(slot).lba = lba;
  sets_.set_state(slot, PageState::kClean);
  return IoStatus::kOk;
}

IoStatus WriteBackPolicy::write(Lba lba, std::span<const std::uint8_t> data,
                                IoPlan* plan) {
  const std::uint32_t set = set_for(lba);
  std::uint32_t idx = sets_.find_data(set, lba);
  if (idx != CacheSets::kNone) {
    ++stats_.write_hits;
  } else {
    ++stats_.write_misses;
    idx = take_slot(set, plan);
    if (idx == CacheSets::kNone) {
      // Nowhere to park the dirty page: fall through to the array.
      ++stats_.write_bypasses;
      --stats_.write_misses;
      return raid_.write_page(lba, data, plan);
    }
    sets_.slot(idx).lba = lba;
    sets_.set_state(idx, PageState::kClean);
  }
  // The write is acknowledged once it is on the SSD — the RAID array is NOT
  // updated here. That is exactly the data-loss exposure.
  ssd_.write_data(idx, SsdWriteKind::kWriteUpdate, data, plan);
  if (sets_.slot(idx).state == PageState::kClean) {
    sets_.set_state(idx, PageState::kOld);  // pinned dirty
  }
  dirty_.insert(idx);
  maybe_flush_dirty(plan);
  return IoStatus::kOk;
}

void WriteBackPolicy::write_back_slot(std::uint32_t idx, IoPlan* plan) {
  CacheSets::CacheSlot& slot = sets_.slot(idx);
  KDD_CHECK(slot.state == PageState::kOld);
  if (ssd_.real()) {
    Page data = make_page();
    ssd_.read_data(idx, data, plan);
    const IoStatus st = raid_.write_page(slot.lba, data, plan);
    KDD_CHECK(st == IoStatus::kOk);
  } else {
    ssd_.read_data(idx, {}, plan);
    raid_.write_page(slot.lba, {}, plan);
  }
  dirty_.erase(idx);
  sets_.set_state(idx, PageState::kClean);
}

std::size_t WriteBackPolicy::write_back_group_of(std::uint32_t idx, IoPlan* plan) {
  const RaidLayout& layout = raid_.layout();
  const CacheSets::CacheSlot& slot = sets_.slot(idx);
  const GroupId g = layout.group_of(slot.lba);
  const std::uint32_t dd = layout.geometry().data_disks();
  const std::uint32_t set = sets_.set_of(idx);

  // Full-stripe candidate: all data members resident and dirty.
  std::vector<std::uint32_t> members(dd, CacheSets::kNone);
  bool all_dirty = dd > 1;
  for (std::uint32_t k = 0; k < dd && all_dirty; ++k) {
    members[k] = sets_.find_state(set, layout.group_member(g, k), PageState::kOld);
    if (members[k] == CacheSets::kNone) all_dirty = false;
  }
  if (!all_dirty) {
    write_back_slot(idx, plan);
    return 1;
  }
  const bool real = ssd_.real();
  std::vector<Page> data(dd);
  for (std::uint32_t k = 0; k < dd; ++k) {
    if (real) data[k] = make_page();
    ssd_.read_data(members[k],
                   real ? std::span<std::uint8_t>(data[k]) : std::span<std::uint8_t>{},
                   plan);
  }
  const IoStatus st = raid_.write_group(g, data, plan);
  KDD_CHECK(st == IoStatus::kOk);
  for (const std::uint32_t m : members) {
    dirty_.erase(m);
    sets_.set_state(m, PageState::kClean);
  }
  ++full_stripe_writebacks_;
  return dd;
}

void WriteBackPolicy::maybe_flush_dirty(IoPlan* plan) {
  const auto high = static_cast<std::uint64_t>(
      config_.clean_high_watermark * static_cast<double>(sets_.pages()));
  if (dirty_.size() <= high) return;
  IoPlan* bg = bg_or(plan);
  const auto low = static_cast<std::uint64_t>(
      config_.clean_low_watermark * static_cast<double>(sets_.pages()));
  while (dirty_.size() > low) {
    write_back_group_of(*dirty_.begin(), bg);
  }
  ++stats_.cleanings;
}

void WriteBackPolicy::flush(IoPlan* plan) {
  while (!dirty_.empty()) write_back_group_of(*dirty_.begin(), plan);
}

void WriteBackPolicy::on_idle(IoPlan* plan) { flush(plan); }

std::uint64_t WriteBackPolicy::fail_ssd_and_count_lost() {
  const std::uint64_t lost = dirty_.size();
  if (ssd_.real()) ssd_.device()->fail();
  // Whatever was dirty is gone; the cache restarts cold with stale RAID data.
  for (std::uint32_t i = 0; i < sets_.pages(); ++i) {
    if (sets_.slot(i).state != PageState::kFree) sets_.reset_slot(i);
  }
  dirty_.clear();
  return lost;
}

}  // namespace kdd
