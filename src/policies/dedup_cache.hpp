// Content-deduplicated write-through cache — a CacheDedup-style D-LRU
// (Li et al., FAST'16), cited in Section V-C as another route to SSD cache
// endurance. Pages with identical contents share one flash page; the cache
// index maps LBAs to fingerprints and fingerprints to slots with reference
// counts, and the LRU runs over source (LBA) entries.
//
// Like KDD this trades CPU work for flash endurance, but along a different
// axis: KDD exploits *temporal* content locality (small diffs between
// versions of one block), dedup exploits *spatial* duplication (identical
// blocks at different addresses). The two are complementary.
//
// Prototype-mode only: deduplication needs real page contents.
#pragma once

#include <list>
#include <unordered_map>

#include "cache/backend.hpp"
#include "cache/policy.hpp"

namespace kdd {

class DedupCachePolicy final : public CachePolicy {
 public:
  DedupCachePolicy(const PolicyConfig& config, RaidArray* array, SsdModel* ssd);

  std::string name() const override { return "WT+dedup"; }

  IoStatus read(Lba lba, std::span<std::uint8_t> out, IoPlan* plan = nullptr) override;
  IoStatus write(Lba lba, std::span<const std::uint8_t> data,
                 IoPlan* plan = nullptr) override;

  CacheStats stats() const override;

  /// Cache insertions whose contents were already resident (no SSD write).
  std::uint64_t dedup_hits() const { return dedup_hits_; }
  /// Distinct flash pages currently in use.
  std::uint64_t slots_in_use() const { return fp_index_.size(); }
  /// LBA mappings currently live (>= slots_in_use when dedup is effective).
  std::uint64_t mapped_lbas() const { return lba_index_.size(); }

 private:
  /// 128-bit content fingerprint (two independent FNV-1a streams — stands in
  /// for the SHA-1 a production system would use).
  struct Fingerprint {
    std::uint64_t lo = 0;
    std::uint64_t hi = 0;
    bool operator==(const Fingerprint&) const = default;
  };
  struct FingerprintHash {
    std::size_t operator()(const Fingerprint& f) const {
      return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ull));
    }
  };
  struct FpEntry {
    std::uint32_t slot = 0;
    std::uint32_t refs = 0;
  };
  struct LbaEntry {
    Fingerprint fp;
    std::list<Lba>::iterator lru_pos;
  };

  static Fingerprint fingerprint(std::span<const std::uint8_t> data);

  /// Maps `lba` to content `data`, deduplicating against resident pages.
  /// `kind` attributes the SSD write if one is needed.
  void insert(Lba lba, std::span<const std::uint8_t> data, SsdWriteKind kind,
              IoPlan* plan);
  void unmap(Lba lba);
  void evict_lru();
  void lru_touch(Lba lba);

  PolicyConfig config_;
  CacheSsd ssd_;
  RaidBackend raid_;
  CacheStats stats_;

  std::unordered_map<Lba, LbaEntry> lba_index_;
  std::unordered_map<Fingerprint, FpEntry, FingerprintHash> fp_index_;
  std::unordered_map<std::uint32_t, Fingerprint> slot_to_fp_;
  std::vector<std::uint32_t> free_slots_;
  std::list<Lba> lru_;  ///< front = most recent
  std::uint64_t dedup_hits_ = 0;
};

}  // namespace kdd
