// Online statistics and latency histograms used by the simulator and the
// experiment harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace kdd {

/// Welford's online mean/variance plus min/max. O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);
  void reset();

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
/// linear sub-buckets). Records microseconds; supports percentile queries
/// with bounded relative error: values below kSubBuckets are exact, larger
/// values land in a sub-bucket spanning 1/(kSubBuckets/2) of their octave,
/// so the reported bucket upper bound overstates the true value by at most
/// 2/kSubBuckets = 1/64 ~= 1.6 % (tests/test_obs.cpp asserts this bound
/// across octave boundaries).
class LatencyHistogram {
 public:
  LatencyHistogram();

  void record(SimTime us);
  void merge(const LatencyHistogram& other);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean_us() const;
  /// q in [0, 1]; returns an upper bound of the bucket containing quantile q.
  SimTime percentile_us(double q) const;
  SimTime max_us() const { return max_; }

 private:
  static constexpr int kSubBucketBits = 7;  // 128 linear sub-buckets per octave
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kOctaves = 40;

  static std::size_t bucket_index(SimTime us);
  static SimTime bucket_upper(std::size_t idx);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_us_ = 0.0;
  SimTime max_ = 0;
  // Touched-bucket span since the last reset: reset() and merge() only walk
  // [lo_, hi_], which keeps rotating per-bucket histograms (obs rolling
  // windows) cheap when each bucket sees a narrow latency range.
  std::size_t lo_ = 0;
  std::size_t hi_ = 0;
};

/// Exact-quantile recorder for moderate sample counts (keeps every sample).
/// Used where the paper reports averages over bounded experiment lengths.
class SampleRecorder {
 public:
  void record(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  double percentile(double q) const;  ///< sorts lazily

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Pretty-prints a byte count ("1.50 GiB").
std::string format_bytes(std::uint64_t bytes);

/// Pretty-prints a ratio as a percentage with one decimal ("42.3%").
std::string format_pct(double ratio);

}  // namespace kdd
