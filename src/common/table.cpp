#include "common/table.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace kdd {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  KDD_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  KDD_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

void TextTable::print(std::FILE* out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c ? "  " : "", static_cast<int>(widths[c]),
                   row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  for (std::size_t i = 0; i + 2 < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

void TextTable::print_csv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c ? "," : "", row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace kdd
