// Thread-local scratch-page pool for the data-path hot loops.
//
// Every RMW, delta and reconstruction step needs a handful of 4 KiB
// temporaries. Allocating them as fresh std::vector Pages puts an
// allocator round-trip (plus a zero-fill) on every single I/O; the arena
// recycles page buffers per thread instead, so steady-state hot paths run
// allocation-free.
//
// Lifetime rules (see docs/performance.md):
//   * ScratchPage borrows from the calling thread's arena and returns the
//     buffer on destruction — scope it like any local.
//   * A borrowed page MUST NOT outlive the function that acquired it unless
//     it is explicitly released (take()/std::move of the underlying Page),
//     which permanently removes that buffer from the pool.
//   * Buffers come back with unspecified contents; use ScratchPage(kZeroed)
//     when accumulator semantics (make_page()) are needed.
//   * Arena buffers are per-thread: never release a page into another
//     thread's arena (ScratchPage makes this impossible by construction).
#pragma once

#include <cstring>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace kdd {

class PageArena {
 public:
  /// Max pages kept for reuse per thread; beyond this, released buffers are
  /// simply freed. 64 pages = 256 KiB, enough for the deepest RAID-6
  /// reconstruction paths with wide groups.
  static constexpr std::size_t kMaxFree = 64;

  /// Borrows a kPageSize buffer with unspecified contents.
  Page acquire() {
    if (!free_.empty()) {
      Page p = std::move(free_.back());
      free_.pop_back();
      ++reused_;
      return p;
    }
    ++allocated_;
    return Page(kPageSize);
  }

  /// Borrows a zero-filled kPageSize buffer (make_page() semantics).
  Page acquire_zeroed() {
    Page p = acquire();
    std::memset(p.data(), 0, p.size());
    return p;
  }

  /// Returns a buffer to the pool. Wrong-sized or moved-from vectors are
  /// dropped (the arena only recycles full pages).
  void release(Page&& p) {
    if (p.size() == kPageSize && free_.size() < kMaxFree) {
      free_.push_back(std::move(p));
    }
  }

  /// The calling thread's arena.
  static PageArena& local() {
    thread_local PageArena arena;
    return arena;
  }

  std::uint64_t allocated() const { return allocated_; }
  std::uint64_t reused() const { return reused_; }
  std::size_t pooled() const { return free_.size(); }

 private:
  std::vector<Page> free_;
  std::uint64_t allocated_ = 0;
  std::uint64_t reused_ = 0;
};

/// RAII borrow of one scratch page from the thread-local arena.
class ScratchPage {
 public:
  enum Init { kUninit, kZeroed };

  explicit ScratchPage(Init init = kUninit)
      : page_(init == kZeroed ? PageArena::local().acquire_zeroed()
                              : PageArena::local().acquire()) {}
  ~ScratchPage() { PageArena::local().release(std::move(page_)); }

  ScratchPage(const ScratchPage&) = delete;
  ScratchPage& operator=(const ScratchPage&) = delete;

  Page& operator*() { return page_; }
  const Page& operator*() const { return page_; }
  Page* operator->() { return &page_; }
  const Page* operator->() const { return &page_; }
  std::uint8_t* data() { return page_.data(); }
  const std::uint8_t* data() const { return page_.data(); }
  std::size_t size() const { return page_.size(); }

  operator std::span<std::uint8_t>() { return page_; }
  operator std::span<const std::uint8_t>() const { return page_; }

  /// Permanently takes the buffer out of the arena (e.g. to std::move it
  /// into a container). The pool simply loses one buffer.
  Page take() { return std::move(page_); }

 private:
  Page page_;
};

/// RAII borrow of `count` scratch pages (vector-of-Page hot paths). All
/// pages return to the thread-local arena on destruction, including on
/// early-error returns.
class ScratchPages {
 public:
  explicit ScratchPages(std::size_t count,
                        ScratchPage::Init init = ScratchPage::kUninit) {
    pages_.reserve(count);
    PageArena& arena = PageArena::local();
    for (std::size_t i = 0; i < count; ++i) {
      pages_.push_back(init == ScratchPage::kZeroed ? arena.acquire_zeroed()
                                                    : arena.acquire());
    }
  }
  ~ScratchPages() {
    PageArena& arena = PageArena::local();
    for (Page& p : pages_) arena.release(std::move(p));
  }

  ScratchPages(const ScratchPages&) = delete;
  ScratchPages& operator=(const ScratchPages&) = delete;

  std::vector<Page>& vec() { return pages_; }
  const std::vector<Page>& vec() const { return pages_; }
  Page& operator[](std::size_t i) { return pages_[i]; }
  const Page& operator[](std::size_t i) const { return pages_[i]; }
  std::size_t size() const { return pages_.size(); }

 private:
  std::vector<Page> pages_;
};

/// Borrows `count` scratch pages into `out` (cleared first). Use with
/// release_scratch_pages to keep vector-of-Page hot paths allocation-free
/// after warm-up.
inline void acquire_scratch_pages(std::vector<Page>& out, std::size_t count,
                                  ScratchPage::Init init = ScratchPage::kUninit) {
  out.clear();
  out.reserve(count);
  PageArena& arena = PageArena::local();
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(init == ScratchPage::kZeroed ? arena.acquire_zeroed()
                                               : arena.acquire());
  }
}

/// Returns every page of `pages` to the calling thread's arena.
inline void release_scratch_pages(std::vector<Page>& pages) {
  PageArena& arena = PageArena::local();
  for (Page& p : pages) arena.release(std::move(p));
  pages.clear();
}

}  // namespace kdd
