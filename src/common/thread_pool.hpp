// Minimal fixed-size thread pool for embarrassingly parallel batch work
// (figure-sweep grid points, bench fan-out). Header-only, no dependencies
// beyond the standard library.
//
// Design notes:
//  * submit() enqueues a task; wait_idle() blocks until every submitted task
//    has finished (queue empty AND no task running) — a deterministic join
//    barrier, not a quiescence heuristic.
//  * parallel_for_indexed(n, fn) runs fn(0..n-1) across the pool and blocks
//    until all are done. Callers get deterministic *result* ordering by
//    writing into index-addressed slots of a pre-sized vector; only the
//    execution order is nondeterministic.
//  * A pool of size <= 1 degrades to inline execution on the calling thread
//    (no worker threads at all), so single-threaded runs stay byte-for-byte
//    reproducible and debuggable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kdd {

class ThreadPool {
 public:
  /// `threads` == 0 or 1 creates no workers; tasks run inline in submit().
  explicit ThreadPool(std::size_t threads) {
    if (threads <= 1) return;
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_main(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count (0 = inline mode).
  std::size_t size() const { return workers_.size(); }

  void submit(std::function<void()> fn) {
    if (workers_.empty()) {
      fn();  // inline mode
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(fn));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Blocks until every task submitted so far has completed.
  void wait_idle() {
    if (workers_.empty()) return;
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
  }

  /// Runs fn(i) for i in [0, n) across the pool; returns when all are done.
  /// fn must be safe to call concurrently for distinct indices.
  template <typename Fn>
  void parallel_for_indexed(std::size_t n, Fn&& fn) {
    if (workers_.empty() || n <= 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    for (std::size_t i = 0; i < n; ++i) {
      submit([&fn, i] { fn(i); });
    }
    wait_idle();
  }

 private:
  void worker_main() {
    std::unique_lock<std::mutex> lock(mu_);
    while (true) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      std::function<void()> fn = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      fn();
      lock.lock();
      if (--outstanding_ == 0) idle_cv_.notify_all();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;       ///< workers: task available / stop
  std::condition_variable idle_cv_;  ///< wait_idle: outstanding hit zero
  std::deque<std::function<void()>> queue_;
  std::size_t outstanding_ = 0;  ///< queued + running tasks
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kdd
