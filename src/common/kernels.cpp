#include "common/kernels.hpp"

#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define KDD_ARCH_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define KDD_ARCH_NEON 1
#endif

namespace kdd::kern {

namespace {

// ---------------------------------------------------------------------------
// GF(2^8) tables (polynomial 0x11d, generator 2 — must match raid/gf256.cpp)
// ---------------------------------------------------------------------------

struct GfTables {
  std::uint8_t exp[512];
  std::uint8_t log[256];
  // Split-nibble product tables: nib_lo[c][x] = c * x, nib_hi[c][x] = c * (x<<4).
  alignas(64) std::uint8_t nib_lo[256][16];
  alignas(64) std::uint8_t nib_hi[256][16];
  // Full product rows for the scalar tier: row[c][s] = c * s.
  alignas(64) std::uint8_t row[256][256];

  GfTables() {
    std::uint8_t x = 1;
    for (unsigned i = 0; i < 255; ++i) {
      exp[i] = x;
      exp[i + 255] = x;
      log[x] = static_cast<std::uint8_t>(i);
      const bool carry = (x & 0x80) != 0;
      x = static_cast<std::uint8_t>(x << 1);
      if (carry) x = static_cast<std::uint8_t>(x ^ 0x1d);
    }
    exp[510] = exp[0];
    exp[511] = exp[1];
    log[0] = 0;  // never consulted for zero
    for (unsigned c = 0; c < 256; ++c) {
      for (unsigned n = 0; n < 16; ++n) {
        nib_lo[c][n] = mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(n));
        nib_hi[c][n] = mul(static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(n << 4));
      }
      for (unsigned s = 0; s < 256; ++s) {
        row[c][s] = static_cast<std::uint8_t>(nib_lo[c][s & 0x0f] ^ nib_hi[c][s >> 4]);
      }
    }
  }

  std::uint8_t mul(std::uint8_t a, std::uint8_t b) const {
    if (a == 0 || b == 0) return 0;
    return exp[static_cast<unsigned>(log[a]) + log[b]];
  }
};

const GfTables& gf() {
  static const GfTables t;
  return t;
}

// ---------------------------------------------------------------------------
// Scalar tier (word-at-a-time; memcpy keeps unaligned access well-defined)
// ---------------------------------------------------------------------------

void xor_into_scalar(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t d;
    std::uint64_t s;
    std::memcpy(&d, dst + i, sizeof d);
    std::memcpy(&s, src + i, sizeof s);
    d ^= s;
    std::memcpy(dst + i, &d, sizeof d);
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
}

void xor_pages3_scalar(std::uint8_t* dst, const std::uint8_t* a,
                       const std::uint8_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t x;
    std::uint64_t y;
    std::memcpy(&x, a + i, sizeof x);
    std::memcpy(&y, b + i, sizeof y);
    x ^= y;
    std::memcpy(dst + i, &x, sizeof x);
  }
  for (; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
}

bool all_zero_scalar(const std::uint8_t* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + sizeof(std::uint64_t) <= n; i += sizeof(std::uint64_t)) {
    std::uint64_t w;
    std::memcpy(&w, p + i, sizeof w);
    if (w != 0) return false;
  }
  for (; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

void mul_acc_scalar(std::uint8_t* dst, std::uint8_t c, const std::uint8_t* src,
                    std::size_t n) {
  const std::uint8_t* row = gf().row[c];
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = static_cast<std::uint8_t>(dst[i] ^ row[src[i]]);
  }
}

// ---------------------------------------------------------------------------
// x86 tiers
// ---------------------------------------------------------------------------

#if defined(KDD_ARCH_X86)

// SSE2 is part of the x86-64 baseline ABI: no target attribute needed.
void xor_into_sse2(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    for (std::size_t k = 0; k < 64; k += 16) {
      const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i + k));
      const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i + k));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i + k), _mm_xor_si128(d, s));
    }
  }
  for (; i + 16 <= n; i += 16) {
    const __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(d, s));
  }
  if (i < n) xor_into_scalar(dst + i, src + i, n - i);
}

void xor_pages3_sse2(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i y = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(x, y));
  }
  if (i < n) xor_pages3_scalar(dst + i, a + i, b + i, n - i);
}

bool all_zero_sse2(const std::uint8_t* p, std::size_t n) {
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p + i));
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(v, zero)) != 0xffff) return false;
  }
  return i >= n || all_zero_scalar(p + i, n - i);
}

__attribute__((target("ssse3"))) void mul_acc_ssse3(std::uint8_t* dst, std::uint8_t c,
                                                    const std::uint8_t* src,
                                                    std::size_t n) {
  const GfTables& t = gf();
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i s = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    __m128i d = _mm_loadu_si128(reinterpret_cast<const __m128i*>(dst + i));
    const __m128i pl = _mm_shuffle_epi8(lo, _mm_and_si128(s, mask));
    const __m128i ph =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi16(s, 4), mask));
    d = _mm_xor_si128(d, _mm_xor_si128(pl, ph));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), d);
  }
  if (i < n) mul_acc_scalar(dst + i, c, src + i, n - i);
}

__attribute__((target("avx2"))) void xor_into_avx2(std::uint8_t* dst,
                                                   const std::uint8_t* src,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(d, s));
  }
  if (i < n) xor_into_sse2(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void xor_pages3_avx2(std::uint8_t* dst,
                                                     const std::uint8_t* a,
                                                     const std::uint8_t* b,
                                                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i y = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), _mm256_xor_si256(x, y));
  }
  if (i < n) xor_pages3_sse2(dst + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) bool all_zero_avx2(const std::uint8_t* p,
                                                   std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    if (!_mm256_testz_si256(v, v)) return false;
  }
  return i >= n || all_zero_sse2(p + i, n - i);
}

__attribute__((target("avx2"))) void mul_acc_avx2(std::uint8_t* dst, std::uint8_t c,
                                                  const std::uint8_t* src,
                                                  std::size_t n) {
  const GfTables& t = gf();
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_lo[c])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(t.nib_hi[c])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i pl = _mm256_shuffle_epi8(lo, _mm256_and_si256(s, mask));
    const __m256i ph =
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi16(s, 4), mask));
    d = _mm256_xor_si256(d, _mm256_xor_si256(pl, ph));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), d);
  }
  if (i < n) mul_acc_ssse3(dst + i, c, src + i, n - i);
}

#endif  // KDD_ARCH_X86

// ---------------------------------------------------------------------------
// NEON tier
// ---------------------------------------------------------------------------

#if defined(KDD_ARCH_NEON)

void xor_into_neon(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(dst + i), vld1q_u8(src + i)));
  }
  if (i < n) xor_into_scalar(dst + i, src + i, n - i);
}

void xor_pages3_neon(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    vst1q_u8(dst + i, veorq_u8(vld1q_u8(a + i), vld1q_u8(b + i)));
  }
  if (i < n) xor_pages3_scalar(dst + i, a + i, b + i, n - i);
}

bool all_zero_neon(const std::uint8_t* p, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t v = vld1q_u8(p + i);
    if (vmaxvq_u8(v) != 0) return false;
  }
  return i >= n || all_zero_scalar(p + i, n - i);
}

void mul_acc_neon(std::uint8_t* dst, std::uint8_t c, const std::uint8_t* src,
                  std::size_t n) {
  const GfTables& t = gf();
  const uint8x16_t lo = vld1q_u8(t.nib_lo[c]);
  const uint8x16_t hi = vld1q_u8(t.nib_hi[c]);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t pl = vqtbl1q_u8(lo, vandq_u8(s, mask));
    const uint8x16_t ph = vqtbl1q_u8(hi, vshrq_n_u8(s, 4));
    d = veorq_u8(d, veorq_u8(pl, ph));
    vst1q_u8(dst + i, d);
  }
  if (i < n) mul_acc_scalar(dst + i, c, src + i, n - i);
}

#endif  // KDD_ARCH_NEON

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

bool tier_supported(Tier t) {
  switch (t) {
    case Tier::kScalar:
      return true;
    case Tier::kSse2:
    case Tier::kAvx2:
#if defined(KDD_ARCH_X86)
      // The SSE tier needs SSSE3 for PSHUFB (universal on x86-64 since ~2006).
      if (t == Tier::kSse2) return __builtin_cpu_supports("ssse3") != 0;
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Tier::kNeon:
#if defined(KDD_ARCH_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Tier detect_tier() {
  if (const char* force = std::getenv("KDD_FORCE_SCALAR");
      force != nullptr && force[0] != '\0' && force[0] != '0') {
    return Tier::kScalar;
  }
  if (const char* name = std::getenv("KDD_KERNEL_TIER")) {
    const std::string s(name);
    Tier want = Tier::kScalar;
    bool known = true;
    if (s == "scalar") want = Tier::kScalar;
    else if (s == "sse2") want = Tier::kSse2;
    else if (s == "avx2") want = Tier::kAvx2;
    else if (s == "neon") want = Tier::kNeon;
    else known = false;
    if (known && tier_supported(want)) return want;
  }
#if defined(KDD_ARCH_NEON)
  return Tier::kNeon;
#else
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  if (tier_supported(Tier::kSse2)) return Tier::kSse2;
  return Tier::kScalar;
#endif
}

Tier& tier_ref() {
  static Tier t = detect_tier();
  return t;
}

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kSse2: return "sse2";
    case Tier::kAvx2: return "avx2";
    case Tier::kNeon: return "neon";
  }
  return "?";
}

Tier active_tier() { return tier_ref(); }

Tier widest_supported_tier() {
#if defined(KDD_ARCH_NEON)
  return Tier::kNeon;
#else
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  if (tier_supported(Tier::kSse2)) return Tier::kSse2;
  return Tier::kScalar;
#endif
}

bool set_tier(Tier t) {
  if (!tier_supported(t)) return false;
  tier_ref() = t;
  return true;
}

void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  switch (tier_ref()) {
#if defined(KDD_ARCH_X86)
    case Tier::kAvx2: xor_into_avx2(dst, src, n); return;
    case Tier::kSse2: xor_into_sse2(dst, src, n); return;
#elif defined(KDD_ARCH_NEON)
    case Tier::kNeon: xor_into_neon(dst, src, n); return;
#endif
    default: xor_into_scalar(dst, src, n); return;
  }
}

void xor_pages3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t n) {
  switch (tier_ref()) {
#if defined(KDD_ARCH_X86)
    case Tier::kAvx2: xor_pages3_avx2(dst, a, b, n); return;
    case Tier::kSse2: xor_pages3_sse2(dst, a, b, n); return;
#elif defined(KDD_ARCH_NEON)
    case Tier::kNeon: xor_pages3_neon(dst, a, b, n); return;
#endif
    default: xor_pages3_scalar(dst, a, b, n); return;
  }
}

bool all_zero(const std::uint8_t* p, std::size_t n) {
  switch (tier_ref()) {
#if defined(KDD_ARCH_X86)
    case Tier::kAvx2: return all_zero_avx2(p, n);
    case Tier::kSse2: return all_zero_sse2(p, n);
#elif defined(KDD_ARCH_NEON)
    case Tier::kNeon: return all_zero_neon(p, n);
#endif
    default: return all_zero_scalar(p, n);
  }
}

void gf256_mul_acc(std::uint8_t* dst, std::uint8_t c, const std::uint8_t* src,
                   std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    xor_into(dst, src, n);
    return;
  }
  switch (tier_ref()) {
#if defined(KDD_ARCH_X86)
    case Tier::kAvx2: mul_acc_avx2(dst, c, src, n); return;
    case Tier::kSse2: mul_acc_ssse3(dst, c, src, n); return;
#elif defined(KDD_ARCH_NEON)
    case Tier::kNeon: mul_acc_neon(dst, c, src, n); return;
#endif
    default: mul_acc_scalar(dst, c, src, n); return;
  }
}

// ---------------------------------------------------------------------------
// Reference implementations
// ---------------------------------------------------------------------------

namespace ref {

void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
}

void xor_pages3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<std::uint8_t>(a[i] ^ b[i]);
}

bool all_zero(const std::uint8_t* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

void gf256_mul_acc(std::uint8_t* dst, std::uint8_t c, const std::uint8_t* src,
                   std::size_t n) {
  if (c == 0) return;
  const GfTables& t = gf();
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
    return;
  }
  const unsigned lc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] = static_cast<std::uint8_t>(dst[i] ^ t.exp[lc + t.log[s]]);
  }
}

std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t r = 0;
  while (b != 0) {
    if (b & 1) r = static_cast<std::uint8_t>(r ^ a);
    const bool hi = (a & 0x80) != 0;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a = static_cast<std::uint8_t>(a ^ 0x1d);
    b = static_cast<std::uint8_t>(b >> 1);
  }
  return r;
}

}  // namespace ref

}  // namespace kdd::kern
