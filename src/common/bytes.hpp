// Page buffers and XOR helpers. A Page is a fixed 4 KiB byte vector; the XOR
// routines are the building block for RAID parity and delta generation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"

namespace kdd {

using Page = std::vector<std::uint8_t>;

/// Allocates a zero-filled page.
inline Page make_page() { return Page(kPageSize, 0); }

/// dst ^= src, element-wise. Sizes must match.
inline void xor_into(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src) {
  KDD_DCHECK(dst.size() == src.size());
  // Word-at-a-time main loop; the compiler vectorises this readily.
  std::size_t i = 0;
  const std::size_t words = dst.size() / sizeof(std::uint64_t);
  auto* d64 = reinterpret_cast<std::uint64_t*>(dst.data());
  auto* s64 = reinterpret_cast<const std::uint64_t*>(src.data());
  for (std::size_t w = 0; w < words; ++w) d64[w] ^= s64[w];
  for (i = words * sizeof(std::uint64_t); i < dst.size(); ++i) dst[i] ^= src[i];
}

/// Returns a XOR b.
inline Page xor_pages(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  KDD_DCHECK(a.size() == b.size());
  Page out(a.begin(), a.end());
  xor_into(out, b);
  return out;
}

/// True if every byte is zero.
inline bool all_zero(std::span<const std::uint8_t> data) {
  for (std::uint8_t b : data) {
    if (b != 0) return false;
  }
  return true;
}

}  // namespace kdd
