// Page buffers and XOR helpers. A Page is a fixed 4 KiB byte vector; the XOR
// routines are the building block for RAID parity and delta generation.
//
// All bulk byte work routes through the runtime-dispatched kernels in
// common/kernels.hpp (scalar / SSE2 / AVX2 / NEON tiers, selected once at
// startup; see docs/performance.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/kernels.hpp"
#include "common/units.hpp"

namespace kdd {

using Page = std::vector<std::uint8_t>;

/// Allocates a zero-filled page.
inline Page make_page() { return Page(kPageSize, 0); }

/// dst ^= src, element-wise. Sizes must match.
inline void xor_into(std::span<std::uint8_t> dst, std::span<const std::uint8_t> src) {
  KDD_DCHECK(dst.size() == src.size());
  kern::xor_into(dst.data(), src.data(), dst.size());
}

/// dst = a XOR b, element-wise (fused copy+XOR: no intermediate buffer).
/// Sizes must match; dst may alias a or b.
inline void xor_pages3(std::span<std::uint8_t> dst, std::span<const std::uint8_t> a,
                       std::span<const std::uint8_t> b) {
  KDD_DCHECK(dst.size() == a.size() && a.size() == b.size());
  kern::xor_pages3(dst.data(), a.data(), b.data(), dst.size());
}

/// Returns a XOR b.
inline Page xor_pages(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  KDD_DCHECK(a.size() == b.size());
  Page out(a.size());
  kern::xor_pages3(out.data(), a.data(), b.data(), out.size());
  return out;
}

/// True if every byte is zero (vectorised, early-exit).
inline bool all_zero(std::span<const std::uint8_t> data) {
  return kern::all_zero(data.data(), data.size());
}

}  // namespace kdd
