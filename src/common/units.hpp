// Size and time units used throughout the KDD codebase.
//
// All device and cache geometry in this project is expressed in 4 KiB pages
// unless a function name says otherwise ("bytes" / "sectors").
#pragma once

#include <cstdint>

namespace kdd {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;

/// Cache/RAID page size used by the paper's evaluation (4 KB, Section IV-A1).
inline constexpr std::uint32_t kPageSize = 4096;

/// Simulated time is kept in microseconds.
using SimTime = std::uint64_t;
inline constexpr SimTime kUsPerMs = 1000;
inline constexpr SimTime kUsPerSec = 1000 * 1000;

/// Logical block address in units of pages (device- or array-relative).
using Lba = std::uint64_t;
inline constexpr Lba kInvalidLba = ~0ull;

}  // namespace kdd
