// Deterministic random number generation and the samplers the evaluation
// needs: uniform ints/doubles, Gaussian (for delta compression ratios,
// Section IV-A2 of the paper) and bounded Zipf (for the FIO-like closed-loop
// workload, Section IV-B3).
#pragma once

#include <cstdint>
#include <vector>

namespace kdd {

/// xoshiro256** 1.0 — fast, high-quality, reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double p_true);

  /// Standard normal via Box-Muller (caches the second variate).
  double next_gaussian();

  /// Normal with given mean/stddev.
  double next_gaussian(double mean, double stddev);

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Samples delta compression ratios ~ N(mean, sigma) clamped to [lo, hi].
///
/// The paper assumes per-write delta compression ratios follow a Gaussian
/// distribution with mean 50 % / 25 % / 12 % for low / medium / high content
/// locality. Sigma defaults to mean/4 so that almost all mass stays positive.
class GaussianRatioSampler {
 public:
  GaussianRatioSampler(double mean, double sigma, double lo, double hi);

  /// Convenience: sigma = mean/4, clamp to [0.02, 1.0].
  static GaussianRatioSampler for_mean(double mean);

  double sample(Rng& rng) const;
  double mean() const { return mean_; }

 private:
  double mean_;
  double sigma_;
  double lo_;
  double hi_;
};

/// Bounded Zipf(alpha) over {0, 1, ..., n-1} using the rejection-inversion
/// method of Hörmann & Derflinger — O(1) per sample, no O(n) table.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  std::uint64_t sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  double h(double x) const;
  double h_integral(double x) const;
  double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

/// Draws from an explicit discrete distribution (used by trace generators to
/// pick request sizes, burst lengths, ...).
class DiscreteSampler {
 public:
  /// weights need not be normalised; must be non-empty and non-negative.
  explicit DiscreteSampler(std::vector<double> weights);

  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace kdd
