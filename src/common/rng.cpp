#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/check.hpp"

namespace kdd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Seed the four words with splitmix64 as recommended by the xoshiro authors.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  KDD_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 is kept away from zero to avoid log(0).
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::next_gaussian(double mean, double stddev) {
  return mean + stddev * next_gaussian();
}

GaussianRatioSampler::GaussianRatioSampler(double mean, double sigma, double lo, double hi)
    : mean_(mean), sigma_(sigma), lo_(lo), hi_(hi) {
  KDD_CHECK(lo_ <= hi_);
}

GaussianRatioSampler GaussianRatioSampler::for_mean(double mean) {
  return {mean, mean / 4.0, 0.02, 1.0};
}

double GaussianRatioSampler::sample(Rng& rng) const {
  const double v = rng.next_gaussian(mean_, sigma_);
  if (v < lo_) return lo_;
  if (v > hi_) return hi_;
  return v;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  KDD_CHECK(n_ >= 1);
  KDD_CHECK(alpha_ > 0.0);
  // Rejection-inversion constants (Hörmann & Derflinger, 1996). Ranks are
  // 1-based internally; sample() shifts to 0-based.
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n_) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const { return std::exp(-alpha_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  const double t = (1.0 - alpha_) * log_x;
  // expm1/x1m handles alpha == 1 smoothly via the limit (log x).
  double helper;
  if (std::abs(t) > 1e-8) {
    helper = std::expm1(t) / t;
  } else {
    helper = 1.0 + t * 0.5 * (1.0 + t / 3.0 * (1.0 + 0.25 * t));
  }
  return log_x * helper;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;
  double helper;
  if (std::abs(t) > 1e-8) {
    helper = std::log1p(t) / t;
  } else {
    helper = 1.0 - t * 0.5 * (1.0 - t / 1.5 * (1.0 - 0.75 * t));
  }
  return std::exp(x * helper);
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_integral_n_ + rng.next_double() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k - 1;
    }
  }
}

DiscreteSampler::DiscreteSampler(std::vector<double> weights) {
  KDD_CHECK(!weights.empty());
  cdf_.reserve(weights.size());
  double total = 0.0;
  for (double w : weights) {
    KDD_CHECK(w >= 0.0);
    total += w;
    cdf_.push_back(total);
  }
  KDD_CHECK(total > 0.0);
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace kdd
