// Runtime-dispatched bulk kernels for the data-path primitives every figure
// in the paper is bottlenecked on: page XOR (parity + delta generation),
// GF(2^8) multiply-accumulate (RAID-6 Q parity) and the zero-page predicate
// (parity-skip checks).
//
// Each kernel has a portable scalar baseline plus SIMD tiers (SSE2/SSSE3 and
// AVX2 on x86-64, NEON on aarch64) selected once at startup via CPU feature
// detection. The GF(2^8) kernel uses the classic split-nibble (PSHUFB /
// TBL) technique: for a fixed coefficient c, two 16-entry tables give
// c * lo_nibble and c * hi_nibble, so one shuffle pair multiplies 16/32
// bytes at a time. The scalar baseline materialises the full 256-entry
// product table from the same nibble tables, which is already branchless and
// several times faster than the historical log/exp loop (kept as
// `ref::gf256_mul_acc` for equivalence tests and the perf gate).
//
// Dispatch overrides:
//   * env KDD_FORCE_SCALAR=1      — force the scalar tier at startup
//   * env KDD_KERNEL_TIER=<name>  — force a named tier (scalar/sse2/avx2/neon)
//   * kern::set_tier(tier)        — runtime override, tests only (not
//                                   thread-safe against in-flight kernels)
#pragma once

#include <cstddef>
#include <cstdint>

namespace kdd::kern {

enum class Tier : std::uint8_t {
  kScalar = 0,
  kSse2 = 1,  ///< 16-byte vectors (XOR/all_zero: SSE2; mul_acc: SSSE3 PSHUFB)
  kAvx2 = 2,  ///< 32-byte vectors
  kNeon = 3,  ///< aarch64 128-bit vectors
};

/// Human-readable tier name ("scalar", "sse2", "avx2", "neon").
const char* tier_name(Tier t);

/// The tier the kernels currently dispatch to.
Tier active_tier();

/// Widest tier this CPU supports (ignoring any override).
Tier widest_supported_tier();

/// Forces dispatch to `t`. Returns false (and leaves dispatch unchanged) if
/// the CPU does not support `t`. Intended for tests and benchmarks only.
bool set_tier(Tier t);

// ---- Dispatched kernels -----------------------------------------------------

/// dst[i] ^= src[i] for i in [0, n).
void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

/// dst[i] = a[i] ^ b[i] for i in [0, n) (fused copy+XOR; dst may alias a or b).
void xor_pages3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t n);

/// True iff every byte of [p, p+n) is zero. Early-exits on the first
/// nonzero vector/word.
bool all_zero(const std::uint8_t* p, std::size_t n);

/// dst[i] ^= c * src[i] over GF(2^8) with the RAID-6 polynomial 0x11d.
/// c == 0 is a no-op; c == 1 degrades to xor_into.
void gf256_mul_acc(std::uint8_t* dst, std::uint8_t c, const std::uint8_t* src,
                   std::size_t n);

// ---- Scalar reference implementations ---------------------------------------
//
// Bit-exact, deliberately naive baselines. The equivalence test suite checks
// every dispatched tier against these, and the perf gate uses them as the
// "before" side of its trajectory file.
namespace ref {

void xor_into(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);
void xor_pages3(std::uint8_t* dst, const std::uint8_t* a, const std::uint8_t* b,
                std::size_t n);
bool all_zero(const std::uint8_t* p, std::size_t n);
/// The historical byte-at-a-time log/exp loop.
void gf256_mul_acc(std::uint8_t* dst, std::uint8_t c, const std::uint8_t* src,
                   std::size_t n);
/// Standalone Russian-peasant GF(2^8) multiply (no tables).
std::uint8_t gf256_mul(std::uint8_t a, std::uint8_t b);

}  // namespace ref

}  // namespace kdd::kern
