// Plain-text table writer for experiment harness output. Produces aligned
// columns like the rows in the paper's tables; also emits CSV for plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace kdd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Numeric helper: formats with the given precision.
  static std::string num(double v, int precision = 2);

  /// Renders with aligned columns to the given stream (default stdout).
  void print(std::FILE* out = stdout) const;

  /// Renders as CSV (comma-separated, no escaping needed for our content).
  void print_csv(std::FILE* out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kdd
