#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace kdd {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

LatencyHistogram::LatencyHistogram()
    : buckets_(static_cast<std::size_t>(kOctaves) * kSubBuckets, 0) {}

std::size_t LatencyHistogram::bucket_index(SimTime us) {
  // Values below kSubBuckets are exact; above, octave k (k >= 1) covers
  // [kSubBuckets << (k-1), kSubBuckets << k) using the top kSubBucketBits
  // bits of the value as the sub-bucket (only the upper half of each octave's
  // slots is populated, which keeps the arithmetic trivially invertible).
  if (us < kSubBuckets) return static_cast<std::size_t>(us);
  const int msb = 63 - std::countl_zero(us);
  const int octave = msb - (kSubBucketBits - 1);
  const std::size_t sub = static_cast<std::size_t>(us >> octave) & (kSubBuckets - 1);
  return kSubBuckets + static_cast<std::size_t>(octave) * kSubBuckets + sub;
}

SimTime LatencyHistogram::bucket_upper(std::size_t idx) {
  if (idx < kSubBuckets) return static_cast<SimTime>(idx);
  const std::size_t rel = idx - kSubBuckets;
  const int octave = static_cast<int>(rel / kSubBuckets);
  const SimTime sub = static_cast<SimTime>(rel % kSubBuckets);
  // sub already carries the octave's leading bit (it is always >=
  // kSubBuckets / 2), so the covered range is
  // [sub << octave, ((sub + 1) << octave) - 1].
  return ((sub + 1) << octave) - 1;
}

void LatencyHistogram::record(SimTime us) {
  const std::size_t idx = bucket_index(us);
  KDD_DCHECK(idx < buckets_.size());
  const std::size_t clamped = idx < buckets_.size() ? idx : buckets_.size() - 1;
  ++buckets_[clamped];
  if (count_ == 0) {
    lo_ = hi_ = clamped;
  } else {
    lo_ = std::min(lo_, clamped);
    hi_ = std::max(hi_, clamped);
  }
  ++count_;
  sum_us_ += static_cast<double>(us);
  max_ = std::max(max_, us);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  KDD_CHECK(buckets_.size() == other.buckets_.size());
  if (other.count_ == 0) return;
  for (std::size_t i = other.lo_; i <= other.hi_; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    lo_ = other.lo_;
    hi_ = other.hi_;
  } else {
    lo_ = std::min(lo_, other.lo_);
    hi_ = std::max(hi_, other.hi_);
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::reset() {
  if (count_ != 0) {
    std::fill(buckets_.begin() + static_cast<std::ptrdiff_t>(lo_),
              buckets_.begin() + static_cast<std::ptrdiff_t>(hi_) + 1, 0ull);
  }
  count_ = 0;
  sum_us_ = 0.0;
  max_ = 0;
  lo_ = hi_ = 0;
}

double LatencyHistogram::mean_us() const {
  return count_ ? sum_us_ / static_cast<double>(count_) : 0.0;
}

SimTime LatencyHistogram::percentile_us(double q) const {
  if (count_ == 0) return 0;
  KDD_CHECK(q >= 0.0 && q <= 1.0);
  const auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count_)));
  std::uint64_t seen = 0;
  for (std::size_t i = lo_; i <= hi_; ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return bucket_upper(i);
  }
  return max_;
}

double SampleRecorder::mean() const {
  if (samples_.empty()) return 0.0;
  double s = 0.0;
  for (double x : samples_) s += x;
  return s / static_cast<double>(samples_.size());
}

double SampleRecorder::percentile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(samples_.size() - 1) + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof buf, "%.2f GiB", b / static_cast<double>(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof buf, "%.2f MiB", b / static_cast<double>(kMiB));
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof buf, "%.2f KiB", b / static_cast<double>(kKiB));
  } else {
    std::snprintf(buf, sizeof buf, "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_pct(double ratio) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", ratio * 100.0);
  return buf;
}

}  // namespace kdd
