// Lightweight runtime assertion macros.
//
// KDD_CHECK is always on (used to guard invariants whose violation would
// silently corrupt simulated data); KDD_DCHECK compiles out in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace kdd::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "KDD_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace kdd::detail

#define KDD_CHECK(expr)                                         \
  do {                                                          \
    if (!(expr)) ::kdd::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define KDD_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define KDD_DCHECK(expr) KDD_CHECK(expr)
#endif
