#include "harness/telemetry.hpp"

#include <filesystem>
#include <utility>

#include "blockdev/fault_device.hpp"
#include "blockdev/ssd_model.hpp"
#include "kdd/kdd_cache.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kdd {

TelemetrySession::TelemetrySession(Options opts)
    : opts_(std::move(opts)), series_(opts_.t_unit) {
  std::vector<std::string> kinds;
  kinds.reserve(kNumSsdWriteKinds);
  for (int k = 0; k < kNumSsdWriteKinds; ++k) {
    kinds.emplace_back(ssd_write_kind_name(static_cast<SsdWriteKind>(k)));
  }
  series_.set_kind_names(std::move(kinds));

  // The snapshot should describe exactly this run: zero the global registry,
  // (re)register the span aggregates, and start a fresh span ring.
  obs::MetricsRegistry::global().reset();
  obs::register_span_metrics();
  obs::TraceBuffer::global().clear();
  obs::TraceBuffer::global().set_capacity(opts_.trace_capacity);
  obs::TraceBuffer::set_sample_period(opts_.trace_sample_period);
  obs::TraceBuffer::global().set_enabled(true);

  // Health + flight ride along by default: the engine registers its gauges
  // into the just-reset registry, and fault-path triggers need the out_dir
  // to exist so a mid-run auto dump can land.
  if (opts_.health) {
    health_ = std::make_unique<obs::HealthEngine>(opts_.health_config);
    obs::HealthEngine::install(health_.get());
  }
  if (opts_.flight) {
    std::error_code ec;
    std::filesystem::create_directories(opts_.out_dir, ec);
    obs::FlightRecorder& fr = obs::FlightRecorder::global();
    fr.clear();
    fr.set_capacity(opts_.flight_capacity);
    if (!ec) fr.set_auto_dump_path(opts_.out_dir + "/flight.json");
    obs::FlightRecorder::set_enabled(true);
  }
}

TelemetrySession::~TelemetrySession() {
  if (!finished_) {
    obs::TraceBuffer::set_enabled(false);
    if (opts_.flight) {
      obs::FlightRecorder::set_enabled(false);
      obs::FlightRecorder::global().set_auto_dump_path("");
    }
  }
  // ~HealthEngine uninstalls itself if still installed.
}

void TelemetrySession::attach_policy(CachePolicy* policy) {
  policy_ = policy;
  if (policy_) prev_stats_ = policy_->stats();
}

void TelemetrySession::attach_kdd(KddCache* kdd) {
  kdd_ = kdd;
  if (kdd_) {
    prev_log_gc_ = kdd_->metadata_log().gc_passes();
    prev_fallbacks_ = kdd_->media_fallbacks();
    prev_healed_ = kdd_->groups_healed();
  }
}

void TelemetrySession::attach_ssd(const SsdModel* ssd) { ssd_ = ssd; }

void TelemetrySession::attach_fault_counters(const FaultCounters* counters) {
  faults_ = counters;
  if (faults_) {
    prev_media_errors_ = faults_->media_error_reads;
    prev_transient_ = faults_->transient_errors;
    prev_corruptions_ = faults_->corruptions_detected;
    prev_repairs_ = faults_->media_errors_healed;
  }
}

void TelemetrySession::poll_sources(obs::WearSample& s) {
  if (policy_) {
    const CacheStats cur = policy_->stats();
    s.ssd_reads = cur.ssd_reads - prev_stats_.ssd_reads;
    for (int k = 0; k < kNumSsdWriteKinds; ++k) {
      s.ssd_writes_by_kind[static_cast<std::size_t>(k)] =
          cur.ssd_writes[k] - prev_stats_.ssd_writes[k];
    }
    s.disk_reads = cur.disk_reads - prev_stats_.disk_reads;
    s.disk_writes = cur.disk_writes - prev_stats_.disk_writes;
    s.cleanings = cur.cleanings - prev_stats_.cleanings;
    s.groups_cleaned = cur.groups_cleaned - prev_stats_.groups_cleaned;
    s.log_gc_passes = cur.log_gc_passes - prev_stats_.log_gc_passes;
    prev_stats_ = cur;
  }
  if (kdd_) {
    // Prefer the log's own GC counter when a KddCache is attached (identical
    // to CacheStats::log_gc_passes, but available even without a policy).
    const std::uint64_t gc = kdd_->metadata_log().gc_passes();
    s.log_gc_passes = gc - prev_log_gc_;
    prev_log_gc_ = gc;
    const std::uint64_t fb = kdd_->media_fallbacks();
    s.media_fallbacks = fb - prev_fallbacks_;
    prev_fallbacks_ = fb;
    const std::uint64_t healed = kdd_->groups_healed();
    s.groups_healed = healed - prev_healed_;
    prev_healed_ = healed;

    s.dez_pages = kdd_->dez_pages();
    s.old_pages = kdd_->old_pages();
    s.stale_groups = kdd_->stale_groups();
    s.staged_deltas = kdd_->staged_deltas();
    s.log_used_pages = kdd_->metadata_log().used_pages();
    s.dez_live_bytes = kdd_->dez_live_bytes();
    s.dez_dead_bytes = kdd_->dez_dead_bytes();
    s.dez_boundary_pages = kdd_->dez_boundary_pages();
    s.dez_spare_pages = kdd_->elastic_spare_pages();
  }
  if (ssd_) {
    s.write_amplification = ssd_->wear().write_amplification();
    s.endurance_consumed = ssd_->endurance_consumed();
  }
  if (faults_) {
    s.media_errors = faults_->media_error_reads - prev_media_errors_;
    prev_media_errors_ = faults_->media_error_reads;
    s.transient_errors = faults_->transient_errors - prev_transient_;
    prev_transient_ = faults_->transient_errors;
    s.corruptions = faults_->corruptions_detected - prev_corruptions_;
    prev_corruptions_ = faults_->corruptions_detected;
    s.read_repairs = faults_->media_errors_healed - prev_repairs_;
    prev_repairs_ = faults_->media_errors_healed;
  }
}

void TelemetrySession::flush_health() {
  health_->observe_requests(staged_t_us_, staged_latency_us_, staged_n_);
  staged_n_ = 0;
}

void TelemetrySession::close_bucket(double t) {
  if (health_ && staged_n_ > 0) flush_health();
  if (bucket_ops_ == 0) return;
  obs::WearSample s;
  s.t = t;
  s.ops = bucket_ops_;
  s.mean_latency_us = latency_sum_us_ / static_cast<double>(bucket_ops_);
  s.max_latency_us = latency_max_us_;
  poll_sources(s);
  series_.add(s);
  if (health_) {
    const std::uint64_t now_us = static_cast<std::uint64_t>(t);
    if (kdd_) health_->observe_destage_lag(now_us, kdd_->stale_groups());
    if (ssd_) {
      const std::vector<double> wear =
          ssd_->region_erase_counts(opts_.wear_regions);
      for (std::size_t r = 0; r < wear.size(); ++r) {
        health_->observe_region_wear(r, wear[r]);
      }
    }
    health_->tick(now_us);
  }
  obs::flight_note(obs::FlightKind::kRequestSample, "bucket_close",
                   static_cast<std::int64_t>(s.max_latency_us),
                   static_cast<std::int64_t>(s.ops));
  bucket_ops_ = 0;
  latency_sum_us_ = 0.0;
  latency_max_us_ = 0;
}

bool TelemetrySession::finish() {
  if (finished_) return true;
  finished_ = true;
  close_bucket(last_t_);
  if (health_) health_->tick(static_cast<std::uint64_t>(last_t_));
  obs::TraceBuffer::set_enabled(false);

  std::error_code ec;
  std::filesystem::create_directories(opts_.out_dir, ec);
  if (ec) {
    KDD_LOG(Error, "telemetry: cannot create %s: %s", opts_.out_dir.c_str(),
            ec.message().c_str());
    return false;
  }
  const std::string dir = opts_.out_dir + "/";
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  bool ok = true;
  ok &= obs::write_text_file(dir + "metrics.prom", obs::prometheus_text(snap));
  ok &= obs::write_text_file(dir + "snapshot.json", obs::snapshot_json(snap) + "\n");
  ok &= series_.write_jsonl(dir + "timeseries.jsonl");
  ok &= obs::TraceBuffer::global().write_chrome_trace(dir + "trace.json");
  if (health_) {
    ok &= obs::write_text_file(dir + "health.json", health_->health_json());
    obs::HealthEngine::install(nullptr);
  }
  if (opts_.flight) {
    ok &= obs::FlightRecorder::global().dump(dir + "flight.json", "finish");
    obs::FlightRecorder::set_enabled(false);
    obs::FlightRecorder::global().set_auto_dump_path("");
  }
  if (!ok) {
    KDD_LOG(Error, "telemetry: failed writing artifacts under %s",
            opts_.out_dir.c_str());
  } else {
    KDD_LOG(Info, "telemetry: wrote %zu buckets + %zu spans under %s",
            series_.samples().size(), obs::TraceBuffer::global().spans().size(),
            opts_.out_dir.c_str());
  }
  return ok;
}

}  // namespace kdd
