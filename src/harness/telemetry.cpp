#include "harness/telemetry.hpp"

#include <filesystem>
#include <utility>

#include "blockdev/fault_device.hpp"
#include "blockdev/ssd_model.hpp"
#include "kdd/kdd_cache.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace kdd {

TelemetrySession::TelemetrySession(Options opts)
    : opts_(std::move(opts)), series_(opts_.t_unit) {
  std::vector<std::string> kinds;
  kinds.reserve(kNumSsdWriteKinds);
  for (int k = 0; k < kNumSsdWriteKinds; ++k) {
    kinds.emplace_back(ssd_write_kind_name(static_cast<SsdWriteKind>(k)));
  }
  series_.set_kind_names(std::move(kinds));

  // The snapshot should describe exactly this run: zero the global registry,
  // (re)register the span aggregates, and start a fresh span ring.
  obs::MetricsRegistry::global().reset();
  obs::register_span_metrics();
  obs::TraceBuffer::global().clear();
  obs::TraceBuffer::global().set_capacity(opts_.trace_capacity);
  obs::TraceBuffer::set_sample_period(opts_.trace_sample_period);
  obs::TraceBuffer::global().set_enabled(true);
}

TelemetrySession::~TelemetrySession() {
  if (!finished_) obs::TraceBuffer::set_enabled(false);
}

void TelemetrySession::attach_policy(CachePolicy* policy) {
  policy_ = policy;
  if (policy_) prev_stats_ = policy_->stats();
}

void TelemetrySession::attach_kdd(KddCache* kdd) {
  kdd_ = kdd;
  if (kdd_) {
    prev_log_gc_ = kdd_->metadata_log().gc_passes();
    prev_fallbacks_ = kdd_->media_fallbacks();
    prev_healed_ = kdd_->groups_healed();
  }
}

void TelemetrySession::attach_ssd(const SsdModel* ssd) { ssd_ = ssd; }

void TelemetrySession::attach_fault_counters(const FaultCounters* counters) {
  faults_ = counters;
  if (faults_) {
    prev_media_errors_ = faults_->media_error_reads;
    prev_transient_ = faults_->transient_errors;
    prev_corruptions_ = faults_->corruptions_detected;
    prev_repairs_ = faults_->media_errors_healed;
  }
}

void TelemetrySession::poll_sources(obs::WearSample& s) {
  if (policy_) {
    const CacheStats cur = policy_->stats();
    s.ssd_reads = cur.ssd_reads - prev_stats_.ssd_reads;
    for (int k = 0; k < kNumSsdWriteKinds; ++k) {
      s.ssd_writes_by_kind[static_cast<std::size_t>(k)] =
          cur.ssd_writes[k] - prev_stats_.ssd_writes[k];
    }
    s.disk_reads = cur.disk_reads - prev_stats_.disk_reads;
    s.disk_writes = cur.disk_writes - prev_stats_.disk_writes;
    s.cleanings = cur.cleanings - prev_stats_.cleanings;
    s.groups_cleaned = cur.groups_cleaned - prev_stats_.groups_cleaned;
    s.log_gc_passes = cur.log_gc_passes - prev_stats_.log_gc_passes;
    prev_stats_ = cur;
  }
  if (kdd_) {
    // Prefer the log's own GC counter when a KddCache is attached (identical
    // to CacheStats::log_gc_passes, but available even without a policy).
    const std::uint64_t gc = kdd_->metadata_log().gc_passes();
    s.log_gc_passes = gc - prev_log_gc_;
    prev_log_gc_ = gc;
    const std::uint64_t fb = kdd_->media_fallbacks();
    s.media_fallbacks = fb - prev_fallbacks_;
    prev_fallbacks_ = fb;
    const std::uint64_t healed = kdd_->groups_healed();
    s.groups_healed = healed - prev_healed_;
    prev_healed_ = healed;

    s.dez_pages = kdd_->dez_pages();
    s.old_pages = kdd_->old_pages();
    s.stale_groups = kdd_->stale_groups();
    s.staged_deltas = kdd_->staged_deltas();
    s.log_used_pages = kdd_->metadata_log().used_pages();
  }
  if (ssd_) {
    s.write_amplification = ssd_->wear().write_amplification();
    s.endurance_consumed = ssd_->endurance_consumed();
  }
  if (faults_) {
    s.media_errors = faults_->media_error_reads - prev_media_errors_;
    prev_media_errors_ = faults_->media_error_reads;
    s.transient_errors = faults_->transient_errors - prev_transient_;
    prev_transient_ = faults_->transient_errors;
    s.corruptions = faults_->corruptions_detected - prev_corruptions_;
    prev_corruptions_ = faults_->corruptions_detected;
    s.read_repairs = faults_->media_errors_healed - prev_repairs_;
    prev_repairs_ = faults_->media_errors_healed;
  }
}

void TelemetrySession::close_bucket(double t) {
  if (bucket_ops_ == 0) return;
  obs::WearSample s;
  s.t = t;
  s.ops = bucket_ops_;
  s.mean_latency_us = latency_sum_us_ / static_cast<double>(bucket_ops_);
  s.max_latency_us = latency_max_us_;
  poll_sources(s);
  series_.add(s);
  bucket_ops_ = 0;
  latency_sum_us_ = 0.0;
  latency_max_us_ = 0;
}

bool TelemetrySession::finish() {
  if (finished_) return true;
  finished_ = true;
  close_bucket(last_t_);
  obs::TraceBuffer::set_enabled(false);

  std::error_code ec;
  std::filesystem::create_directories(opts_.out_dir, ec);
  if (ec) {
    KDD_LOG(Error, "telemetry: cannot create %s: %s", opts_.out_dir.c_str(),
            ec.message().c_str());
    return false;
  }
  const std::string dir = opts_.out_dir + "/";
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  bool ok = true;
  ok &= obs::write_text_file(dir + "metrics.prom", obs::prometheus_text(snap));
  ok &= obs::write_text_file(dir + "snapshot.json", obs::snapshot_json(snap) + "\n");
  ok &= series_.write_jsonl(dir + "timeseries.jsonl");
  ok &= obs::TraceBuffer::global().write_chrome_trace(dir + "trace.json");
  if (!ok) {
    KDD_LOG(Error, "telemetry: failed writing artifacts under %s",
            opts_.out_dir.c_str());
  } else {
    KDD_LOG(Info, "telemetry: wrote %zu buckets + %zu spans under %s",
            series_.samples().size(), obs::TraceBuffer::global().spans().size(),
            opts_.out_dir.c_str());
  }
  return ok;
}

}  // namespace kdd
