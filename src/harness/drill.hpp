// Reliability drill harness (ISSUE 6): rolling disk replacement + continuous
// background scrub + an optional power cut, all under a live seeded workload
// against the full prototype stack (RaidArray + SsdModel + NVRAM + KddCache +
// RebuildEngine + ScrubScheduler).
//
// Every drill runs the SAME seeded workload twice:
//   * a healthy pass — no faults — whose end-state digest (FNV-1a over every
//     page of the working set read back through the cache) is ground truth,
//   * a faulted pass — disks failed online at configured request fractions,
//     rebuilt incrementally while the workload keeps flowing, scrub ticking
//     in the background, optionally with power torn mid-rebuild and resumed
//     from the NVRAM checkpoint.
// The faulted pass must end byte-identical to the healthy one (same digest),
// with every rebuild complete, zero groups reconstructed from stale parity,
// and a clean final parity scrub. Per-request device-op costs are recorded in
// both passes so the drill can bound the foreground p99 inflation the online
// rebuild causes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blockdev/ssd_model.hpp"
#include "cache/policy.hpp"
#include "common/units.hpp"
#include "raid/layout.hpp"
#include "raid/rebuild.hpp"
#include "raid/scrub.hpp"

namespace kdd {

struct DrillConfig {
  int requests = 3000;
  Lba working_set = 400;
  double write_prob = 0.55;
  double content_locality = 0.25;

  RaidGeometry geo;  ///< defaulted to a small RAID-5 in the constructor
  SsdConfig ssd;
  PolicyConfig policy;

  /// Rolling replacement schedule: disk `disk` fails online once
  /// `fraction * requests` requests have completed. Fractions must ascend.
  struct FailPoint {
    double fraction = 0.0;
    std::uint32_t disk = 0;
  };
  std::vector<FailPoint> fail_points = {{0.25, 1}, {0.60, 3}};

  /// Hot spares available for the whole drill (the pool gates every
  /// degraded -> rebuilding transition).
  std::uint32_t spares = 4;

  OnlineRebuildConfig rebuild;
  ScrubConfig scrub;

  /// Tear power once the first rebuild's NVRAM checkpoint passes 30% of the
  /// array, then restore, resume from the checkpoint, recover the cache and
  /// carry on.
  bool power_cut_mid_rebuild = false;

  DrillConfig();
};

struct DrillReport {
  std::uint64_t seed = 0;
  int requests_completed = 0;

  std::uint64_t healthy_digest = 0;
  std::uint64_t faulted_digest = 0;

  std::uint64_t rebuilds_started = 0;
  std::uint64_t rebuilds_completed = 0;
  std::uint64_t stale_rebuild_folds = 0;  ///< must stay 0 (barrier works)
  std::uint64_t degraded_reads = 0;       ///< array-level reconstructing reads
  std::uint64_t degraded_cache_hits = 0;  ///< lost pages served from cache
  std::uint64_t degraded_delta_folds = 0; ///< fold-then-retry recoveries
  std::uint64_t barrier_deferrals = 0;
  std::uint64_t requests_while_degraded = 0;  ///< dwell outside healthy, in ops

  std::uint64_t scrub_groups = 0;
  std::uint64_t scrub_repairs = 0;
  std::uint64_t scrub_passes = 0;

  bool power_cut_fired = false;
  bool checkpoint_resumed = false;

  /// Per-request device-op cost (disk reads + writes attributable to the
  /// request, including background work it absorbed), 99th percentile.
  std::uint64_t healthy_p99_ops = 0;
  std::uint64_t faulted_p99_ops = 0;

  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

class ReliabilityDrillRunner {
 public:
  explicit ReliabilityDrillRunner(DrillConfig config = {});

  /// Healthy pass, then faulted pass, then the digest/rebuild/scrub verdict.
  DrillReport run(std::uint64_t seed);

  const DrillConfig& config() const { return config_; }

 private:
  struct Rig;

  DrillConfig config_;
};

}  // namespace kdd
