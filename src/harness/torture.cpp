#include "harness/torture.hpp"

#include <memory>
#include <unordered_map>
#include <utility>

#include "cache/nvram.hpp"
#include "common/rng.hpp"
#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"
#include "raid/rebuild.hpp"

namespace kdd {

TortureConfig::TortureConfig() {
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  ssd.logical_pages = 256;
  ssd.pages_per_block = 16;
  policy.ssd_pages = 256;
  policy.ways = 8;
  // Segment staging is ON in torture so the uniform crash point also lands
  // inside multi-page segment flushes (write_multi tears mid-vector); a small
  // segment keeps seals frequent at this scale.
  policy.segment_staging = true;
  policy.segment_pages = 16;
  // The elastic delta zone is ON in torture: commits append into open
  // extents, the GC relocates live deltas mid-run, and the DAZ/DEZ boundary
  // moves — so the uniform crash point also lands inside extent appends and
  // GC relocation writes. A short epoch keeps the boundary active at this
  // tiny scale (256 cache pages, ~700 requests per seed).
  policy.dez_elastic = true;
  policy.dez_gc = true;
  policy.adaptive_boundary = true;
  policy.boundary_epoch_ops = 64;
}

/// One seed's worth of stack. Everything but the KddCache survives a power
/// cut (the array's platters, the SSD's flash, the NVRAM); the KddCache is
/// the DRAM state that a real crash destroys, so recovery discards it and
/// constructs a fresh instance with recover = true.
struct TortureRunner::Rig {
  explicit Rig(const TortureConfig& cfg)
      : array(cfg.geo),
        ssd(cfg.ssd),
        nvram(cfg.policy.staging_buffer_bytes, cfg.policy.metadata_buffer_entries),
        kdd(std::make_unique<KddCache>(cfg.policy, &array, &ssd, &nvram)) {}

  FaultInjectingDevice* cache_faults() { return kdd->cache_ssd().faults(); }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  std::unique_ptr<KddCache> kdd;

  /// Ground truth: contents of every page whose write was acknowledged kOk.
  std::unordered_map<Lba, Page> model;

  /// Shared power domain (null in the dry run).
  std::shared_ptr<PowerRail> rail;

  /// The write in flight when the rail dropped: the only request whose
  /// outcome is allowed to be ambiguous (old or new contents, never a blend).
  Lba in_flight_lba = kInvalidLba;
  Page in_flight_new;
};

TortureRunner::TortureRunner(TortureConfig config) : config_(std::move(config)) {}

int TortureRunner::run_workload(Rig& rig, std::uint64_t seed, int requests,
                                TortureReport* report) {
  static const Page kZeroPage = make_page();
  const ContentGenerator gen(seed * 0x2545f4914f6cdd1dull + 7);
  Rng rng(seed);
  for (int i = 0; i < requests; ++i) {
    if (rig.rail && !rig.rail->on()) return i;  // power already dead
    const Lba lba = rng.next_below(config_.working_set);
    if (rng.next_bool(config_.write_prob)) {
      const auto it = rig.model.find(lba);
      const Page data = it == rig.model.end()
                            ? gen.base_page(lba)
                            : gen.mutate(it->second, config_.content_locality, rng);
      const IoStatus st = rig.kdd->write(lba, data, nullptr);
      if (st == IoStatus::kOk) {
        // Acknowledged: durable no matter what happens next (even if the
        // power cut fired inside this very request, after the ack point).
        rig.model[lba] = data;
      } else if (rig.rail && !rig.rail->on()) {
        rig.in_flight_lba = lba;
        rig.in_flight_new = data;
        if (report) report->in_flight_lba = lba;
        return i + 1;
      } else {
        if (report) {
          report->violations.push_back("write failed with power on at lba " +
                                       std::to_string(lba));
        }
        return i + 1;
      }
    } else {
      Page buf = make_page();
      const IoStatus st = rig.kdd->read(lba, buf, nullptr);
      if (st == IoStatus::kOk) {
        const auto it = rig.model.find(lba);
        const Page& expect = it == rig.model.end() ? kZeroPage : it->second;
        if (buf != expect && report) {
          report->violations.push_back("read returned wrong data at lba " +
                                       std::to_string(lba));
        }
      } else if (rig.rail && !rig.rail->on()) {
        // A read in flight at the cut: nothing was at risk, nothing to track.
        return i + 1;
      } else {
        if (report) {
          report->violations.push_back("read failed with power on at lba " +
                                       std::to_string(lba));
        }
        return i + 1;
      }
    }
  }
  return requests;
}

void TortureRunner::verify_against_model(Rig& rig, TortureReport* report) {
  report->pages_verified = 0;
  Page buf = make_page();
  for (auto& [lba, page] : rig.model) {
    const IoStatus st = rig.kdd->read(lba, buf, nullptr);
    if (st != IoStatus::kOk) {
      report->violations.push_back("post-recovery read failed at lba " +
                                   std::to_string(lba));
      continue;
    }
    if (buf == page) {
      ++report->pages_verified;
      continue;
    }
    if (lba == rig.in_flight_lba && !rig.in_flight_new.empty() &&
        buf == rig.in_flight_new) {
      // The interrupted write turned out to be durable after all — atomicity
      // allows that. Fold it into the truth for the rest of the cycle.
      report->in_flight_read_back_new = true;
      page = rig.in_flight_new;
      ++report->pages_verified;
      continue;
    }
    report->violations.push_back(
        lba == rig.in_flight_lba
            ? "in-flight page is a blend of old and new at lba " + std::to_string(lba)
            : "integrity violation: acked data lost at lba " + std::to_string(lba));
  }
}

TortureReport TortureRunner::run_case(std::uint64_t seed, std::uint64_t cut_after) {
  TortureReport rep;
  rep.seed = seed;
  rep.cut_after = cut_after;

  Rig rig(config_);
  rig.rail = std::make_shared<PowerRail>();
  rig.array.attach_rail(rig.rail);
  rig.cache_faults()->attach_rail(rig.rail);
  rig.cache_faults()->arm_power_cut(cut_after);

  rep.requests_completed = run_workload(rig, seed, config_.requests, &rep);
  rep.cut_fired = !rig.rail->on();
  rep.cache_faults = rig.cache_faults()->fault_counters();
  rep.domain_power_cut_rejects = rep.cache_faults.power_cut_rejects;
  for (std::uint32_t d = 0; d < config_.geo.num_disks; ++d) {
    rep.domain_power_cut_rejects +=
        rig.array.faults(d).fault_counters().power_cut_rejects;
  }

  // Power restore. The DRAM image (KddCache, incl. its fault decorator's
  // checksum map — a real controller's DIF state dies with it too) is lost;
  // flash, platters and NVRAM survive. Recover from the persistent state.
  rig.rail->restore();
  rig.kdd = std::make_unique<KddCache>(config_.policy, &rig.array, &rig.ssd,
                                       &rig.nvram, /*recover=*/true);
  rig.cache_faults()->attach_rail(rig.rail);

  // Segment-staging recovery accounting. At most ONE segment can be in
  // flight at a cut, so anything else means the epoch bookkeeping is broken.
  const SegmentStats& ss = rig.kdd->cache_ssd().segment_stats();
  rep.segments_recovered = ss.recovered_segments;
  rep.segments_discarded = ss.discarded_segments;
  rep.segment_pages_discarded = ss.discarded_pages;
  if (ss.recovered_segments + ss.discarded_segments > 1) {
    rep.violations.push_back("recovery touched more than the one in-flight segment");
  }

  verify_against_model(rig, &rep);

  // The recovered stack must keep working: more traffic, then a full flush
  // and a parity scrub that has to come back clean.
  run_workload(rig, seed * 0x9e3779b97f4a7c15ull + 1,
               config_.post_recovery_requests, &rep);
  rig.kdd->flush(nullptr);
  if (!rig.array.scrub().empty()) {
    rep.violations.push_back("parity scrub found inconsistent groups after flush");
  }
  verify_against_model(rig, &rep);
  return rep;
}

TortureReport TortureRunner::run_rebuild_case(std::uint64_t seed) {
  TortureReport rep;
  rep.seed = seed;

  Rig rig(config_);
  rig.rail = std::make_shared<PowerRail>();
  rig.array.attach_rail(rig.rail);
  rig.cache_faults()->attach_rail(rig.rail);

  // Deliberately slow rebuild (small chunks, frequent throttling) so the
  // power cut reliably lands mid-rebuild.
  OnlineRebuildConfig rcfg;
  rcfg.chunk_groups = 8;
  rcfg.min_chunk_groups = 2;
  rcfg.ops_between_steps = 4;
  rcfg.pressure_window = 64;

  const std::uint64_t total = config_.geo.num_groups();
  const auto threshold = static_cast<std::uint64_t>(
      static_cast<double>(total) * config_.rebuild_cut_fraction);
  {
    RebuildEngine engine(&rig.array, rcfg);
    rig.kdd->bind_rebuild_engine(&engine);

    // Dirty the cache (staged deltas, stale parity), then lose a disk online.
    run_workload(rig, seed, config_.requests, &rep);
    if (!rig.kdd->handle_disk_failure_online(config_.rebuild_fail_disk)) {
      rep.violations.push_back("online rebuild failed to start");
      return rep;
    }

    // Foreground keeps flowing; the engine rebuilds in its slipstream. Tear
    // the rail once the NVRAM checkpoint passes the threshold. The cut lands
    // between requests: the ambiguity under test is the rebuild checkpoint.
    std::uint64_t chunk_seed = seed ^ 0x5bf0363546f1d2c9ull;
    while (rig.rail->on() && engine.rebuild_active()) {
      run_workload(rig, ++chunk_seed, 8, &rep);
      if (rig.nvram.rebuild_active && rig.nvram.rebuild_cursor >= threshold) {
        rig.rail->cut();
      }
    }
    if (!engine.rebuild_active()) {
      rep.violations.push_back("rebuild completed before the cut threshold");
      return rep;
    }
    rep.cut_fired = true;
    rep.rebuild_cursor_at_cut = rig.nvram.rebuild_cursor;
    rig.kdd->bind_rebuild_engine(nullptr);
  }  // the engine (controller DRAM) dies with the power

  // Power restore. The in-core cursor is gone (model that explicitly); the
  // NVRAM checkpoint and the partially rebuilt replacement media survive.
  rig.rail->restore();
  rig.array.rebuild_abandon();
  rig.kdd.reset();  // DRAM cache image is lost too
  rep.checkpoint_survived = rig.nvram.rebuild_active &&
                            rig.nvram.rebuild_disk == config_.rebuild_fail_disk;
  if (!rep.checkpoint_survived) {
    rep.violations.push_back("NVRAM rebuild checkpoint lost across the cut");
    return rep;
  }

  // Resume order matters: re-arm the cursor BEFORE constructing the
  // recovering cache, so recovery-era reads treat the un-rebuilt region as a
  // down member instead of trusting garbage media.
  RebuildEngine engine(&rig.array, rcfg);
  RebuildCheckpoint cp;
  cp.disk = rig.nvram.rebuild_disk;
  cp.cursor = rig.nvram.rebuild_cursor;
  cp.active = true;
  engine.resume(cp);
  rep.rebuild_cursor_at_resume = rig.array.rebuild_cursor();
  if (rep.rebuild_cursor_at_resume < threshold) {
    rep.violations.push_back("resumed cursor lost checkpointed progress");
  }

  rig.kdd = std::make_unique<KddCache>(config_.policy, &rig.array, &rig.ssd,
                                       &rig.nvram, /*recover=*/true);
  rig.cache_faults()->attach_rail(rig.rail);
  rig.kdd->bind_rebuild_engine(&engine);

  // Finish the rebuild. The write count on the replacement disk proves the
  // completed chunks below the checkpoint are NOT reconstructed again: only
  // the remaining groups (plus bounded destage parity traffic) touch it.
  const std::uint64_t writes_before =
      rig.array.faults(config_.rebuild_fail_disk).media_writes();
  int stalls = 0;
  while (engine.rebuild_active() && stalls < 1024) {
    if (engine.pump(nullptr, /*urgent=*/true) == 0) ++stalls;
  }
  rep.rebuild_completed =
      !rig.array.rebuild_active() && rig.array.failed_disk_count() == 0;
  if (!rep.rebuild_completed) {
    rep.violations.push_back("resumed rebuild did not complete");
  }
  rep.new_disk_writes_after_resume =
      rig.array.faults(config_.rebuild_fail_disk).media_writes() - writes_before;
  const std::uint64_t remaining = total - rep.rebuild_cursor_at_resume;
  if (rep.new_disk_writes_after_resume > remaining + total / 8) {
    rep.violations.push_back("resume re-reconstructed already-completed chunks");
  }
  if (rig.array.rebuild_stale_folds() != 0) {
    rep.violations.push_back("rebuild reconstructed groups from stale parity");
  }

  verify_against_model(rig, &rep);

  // The recovered, fully rebuilt stack must keep working.
  run_workload(rig, seed * 0x9e3779b97f4a7c15ull + 1,
               config_.post_recovery_requests, &rep);
  rig.kdd->flush(nullptr);
  if (!rig.array.scrub().empty()) {
    rep.violations.push_back("parity scrub found inconsistent groups after flush");
  }
  verify_against_model(rig, &rep);
  return rep;
}

TortureReport TortureRunner::run_gc_crash_case(std::uint64_t seed) {
  // Dry run with the GC write hook armed: every time the delta-zone GC is
  // about to issue a relocation write, record the cache device's media-write
  // index. Those marks are exactly the crash points where a mapping update
  // races a live-delta move.
  std::vector<std::uint64_t> marks;
  std::uint64_t total_writes = 0;
  {
    Rig dry(config_);
    dry.kdd->set_gc_write_hook(
        [&marks, &dry] { marks.push_back(dry.cache_faults()->media_writes()); });
    TortureReport baseline;
    baseline.seed = seed;
    run_workload(dry, seed, config_.requests, &baseline);
    total_writes = dry.cache_faults()->media_writes();
    if (!baseline.ok()) return baseline;
  }
  // With segment staging the relocation write itself is buffered in the open
  // segment, so the tear actually lands on the NEXT media write (typically
  // the metadata append or the seal carrying the relocated deltas). A mark
  // recorded at the tail of the workload may have no media write after it at
  // all — the armed cut would never fire — so only keep tearable marks.
  std::erase_if(marks, [total_writes](std::uint64_t m) { return m >= total_writes; });
  TortureReport rep;
  if (marks.empty()) {
    // The workload never fragmented a DEZ page past the GC threshold: report
    // it as a (clean) no-op so sweeps can count coverage.
    rep.seed = seed;
    rep.total_media_writes = total_writes;
    return rep;
  }
  // Tear power at one of the relocation writes: cut_after = mark lets exactly
  // `mark` media writes through, so the destination write of the relocation
  // run is the first operation the dead rail rejects.
  Rng pick(seed ^ 0x94d049bb133111ebull);
  const std::uint64_t cut = marks[pick.next_below(marks.size())];
  rep = run_case(seed, cut);
  rep.total_media_writes = total_writes;
  rep.gc_relocation_writes = marks.size();
  return rep;
}

TortureReport TortureRunner::run_seed(std::uint64_t seed) {
  // Dry run: same seeded workload, no faults, to learn the media-write count
  // W of the cache device. It doubles as a sanity baseline — a violation here
  // means the workload itself is broken, not the crash handling.
  std::uint64_t total_writes = 0;
  {
    Rig dry(config_);
    TortureReport baseline;
    baseline.seed = seed;
    run_workload(dry, seed, config_.requests, &baseline);
    total_writes = dry.cache_faults()->media_writes();
    if (!baseline.ok() || total_writes == 0) {
      baseline.total_media_writes = total_writes;
      if (total_writes == 0) {
        baseline.violations.push_back("dry run produced no cache media writes");
      }
      return baseline;
    }
  }
  // Uniform crash point over every media write of the run: DAZ admissions,
  // delta commits, metadata appends and GC rewrites are all hit in proportion
  // to their frequency.
  Rng cut_rng(seed ^ 0xc3a5c85c97cb3127ull);
  TortureReport rep = run_case(seed, cut_rng.next_below(total_writes));
  rep.total_media_writes = total_writes;
  return rep;
}

}  // namespace kdd
