#include "harness/torture.hpp"

#include <memory>
#include <unordered_map>
#include <utility>

#include "cache/nvram.hpp"
#include "common/rng.hpp"
#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"

namespace kdd {

TortureConfig::TortureConfig() {
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  ssd.logical_pages = 256;
  ssd.pages_per_block = 16;
  policy.ssd_pages = 256;
  policy.ways = 8;
}

/// One seed's worth of stack. Everything but the KddCache survives a power
/// cut (the array's platters, the SSD's flash, the NVRAM); the KddCache is
/// the DRAM state that a real crash destroys, so recovery discards it and
/// constructs a fresh instance with recover = true.
struct TortureRunner::Rig {
  explicit Rig(const TortureConfig& cfg)
      : array(cfg.geo),
        ssd(cfg.ssd),
        nvram(cfg.policy.staging_buffer_bytes, cfg.policy.metadata_buffer_entries),
        kdd(std::make_unique<KddCache>(cfg.policy, &array, &ssd, &nvram)) {}

  FaultInjectingDevice* cache_faults() { return kdd->cache_ssd().faults(); }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  std::unique_ptr<KddCache> kdd;

  /// Ground truth: contents of every page whose write was acknowledged kOk.
  std::unordered_map<Lba, Page> model;

  /// Shared power domain (null in the dry run).
  std::shared_ptr<PowerRail> rail;

  /// The write in flight when the rail dropped: the only request whose
  /// outcome is allowed to be ambiguous (old or new contents, never a blend).
  Lba in_flight_lba = kInvalidLba;
  Page in_flight_new;
};

TortureRunner::TortureRunner(TortureConfig config) : config_(std::move(config)) {}

int TortureRunner::run_workload(Rig& rig, std::uint64_t seed, int requests,
                                TortureReport* report) {
  static const Page kZeroPage = make_page();
  const ContentGenerator gen(seed * 0x2545f4914f6cdd1dull + 7);
  Rng rng(seed);
  for (int i = 0; i < requests; ++i) {
    if (rig.rail && !rig.rail->on()) return i;  // power already dead
    const Lba lba = rng.next_below(config_.working_set);
    if (rng.next_bool(config_.write_prob)) {
      const auto it = rig.model.find(lba);
      const Page data = it == rig.model.end()
                            ? gen.base_page(lba)
                            : gen.mutate(it->second, config_.content_locality, rng);
      const IoStatus st = rig.kdd->write(lba, data, nullptr);
      if (st == IoStatus::kOk) {
        // Acknowledged: durable no matter what happens next (even if the
        // power cut fired inside this very request, after the ack point).
        rig.model[lba] = data;
      } else if (rig.rail && !rig.rail->on()) {
        rig.in_flight_lba = lba;
        rig.in_flight_new = data;
        if (report) report->in_flight_lba = lba;
        return i + 1;
      } else {
        if (report) {
          report->violations.push_back("write failed with power on at lba " +
                                       std::to_string(lba));
        }
        return i + 1;
      }
    } else {
      Page buf = make_page();
      const IoStatus st = rig.kdd->read(lba, buf, nullptr);
      if (st == IoStatus::kOk) {
        const auto it = rig.model.find(lba);
        const Page& expect = it == rig.model.end() ? kZeroPage : it->second;
        if (buf != expect && report) {
          report->violations.push_back("read returned wrong data at lba " +
                                       std::to_string(lba));
        }
      } else if (rig.rail && !rig.rail->on()) {
        // A read in flight at the cut: nothing was at risk, nothing to track.
        return i + 1;
      } else {
        if (report) {
          report->violations.push_back("read failed with power on at lba " +
                                       std::to_string(lba));
        }
        return i + 1;
      }
    }
  }
  return requests;
}

void TortureRunner::verify_against_model(Rig& rig, TortureReport* report) {
  report->pages_verified = 0;
  Page buf = make_page();
  for (auto& [lba, page] : rig.model) {
    const IoStatus st = rig.kdd->read(lba, buf, nullptr);
    if (st != IoStatus::kOk) {
      report->violations.push_back("post-recovery read failed at lba " +
                                   std::to_string(lba));
      continue;
    }
    if (buf == page) {
      ++report->pages_verified;
      continue;
    }
    if (lba == rig.in_flight_lba && !rig.in_flight_new.empty() &&
        buf == rig.in_flight_new) {
      // The interrupted write turned out to be durable after all — atomicity
      // allows that. Fold it into the truth for the rest of the cycle.
      report->in_flight_read_back_new = true;
      page = rig.in_flight_new;
      ++report->pages_verified;
      continue;
    }
    report->violations.push_back(
        lba == rig.in_flight_lba
            ? "in-flight page is a blend of old and new at lba " + std::to_string(lba)
            : "integrity violation: acked data lost at lba " + std::to_string(lba));
  }
}

TortureReport TortureRunner::run_case(std::uint64_t seed, std::uint64_t cut_after) {
  TortureReport rep;
  rep.seed = seed;
  rep.cut_after = cut_after;

  Rig rig(config_);
  rig.rail = std::make_shared<PowerRail>();
  rig.array.attach_rail(rig.rail);
  rig.cache_faults()->attach_rail(rig.rail);
  rig.cache_faults()->arm_power_cut(cut_after);

  rep.requests_completed = run_workload(rig, seed, config_.requests, &rep);
  rep.cut_fired = !rig.rail->on();
  rep.cache_faults = rig.cache_faults()->fault_counters();
  rep.domain_power_cut_rejects = rep.cache_faults.power_cut_rejects;
  for (std::uint32_t d = 0; d < config_.geo.num_disks; ++d) {
    rep.domain_power_cut_rejects +=
        rig.array.faults(d).fault_counters().power_cut_rejects;
  }

  // Power restore. The DRAM image (KddCache, incl. its fault decorator's
  // checksum map — a real controller's DIF state dies with it too) is lost;
  // flash, platters and NVRAM survive. Recover from the persistent state.
  rig.rail->restore();
  rig.kdd = std::make_unique<KddCache>(config_.policy, &rig.array, &rig.ssd,
                                       &rig.nvram, /*recover=*/true);
  rig.cache_faults()->attach_rail(rig.rail);

  verify_against_model(rig, &rep);

  // The recovered stack must keep working: more traffic, then a full flush
  // and a parity scrub that has to come back clean.
  run_workload(rig, seed * 0x9e3779b97f4a7c15ull + 1,
               config_.post_recovery_requests, &rep);
  rig.kdd->flush(nullptr);
  if (!rig.array.scrub().empty()) {
    rep.violations.push_back("parity scrub found inconsistent groups after flush");
  }
  verify_against_model(rig, &rep);
  return rep;
}

TortureReport TortureRunner::run_seed(std::uint64_t seed) {
  // Dry run: same seeded workload, no faults, to learn the media-write count
  // W of the cache device. It doubles as a sanity baseline — a violation here
  // means the workload itself is broken, not the crash handling.
  std::uint64_t total_writes = 0;
  {
    Rig dry(config_);
    TortureReport baseline;
    baseline.seed = seed;
    run_workload(dry, seed, config_.requests, &baseline);
    total_writes = dry.cache_faults()->media_writes();
    if (!baseline.ok() || total_writes == 0) {
      baseline.total_media_writes = total_writes;
      if (total_writes == 0) {
        baseline.violations.push_back("dry run produced no cache media writes");
      }
      return baseline;
    }
  }
  // Uniform crash point over every media write of the run: DAZ admissions,
  // delta commits, metadata appends and GC rewrites are all hit in proportion
  // to their frequency.
  Rng cut_rng(seed ^ 0xc3a5c85c97cb3127ull);
  TortureReport rep = run_case(seed, cut_rng.next_below(total_writes));
  rep.total_media_writes = total_writes;
  return rep;
}

}  // namespace kdd
