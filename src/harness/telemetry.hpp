// TelemetrySession: one-stop collector for an instrumented run.
//
// The obs layer provides the primitives (MetricsRegistry, TraceBuffer,
// WearSeries, exporters); this harness-level session knows the concrete
// sources — a CachePolicy's CacheStats, a KddCache's zone/cleaning/log
// gauges, an SsdModel's wear state, a FaultInjectingDevice's counters — and
// turns them into the three machine-readable artifacts the paper's analysis
// pipeline consumes:
//
//   <out_dir>/metrics.prom       Prometheus text exposition (final snapshot)
//   <out_dir>/snapshot.json      same snapshot as one JSON object
//   <out_dir>/timeseries.jsonl   WearSeries buckets (traffic deltas + gauges)
//   <out_dir>/trace.json         Chrome trace_event JSON of the span ring
//   <out_dir>/health.json        kdd-health-v1 SLO attainment + alert table
//   <out_dir>/flight.json        kdd-flight-v1 flight-recorder dump
//
// The session also runs the continuous health engine (obs/health.hpp) and
// arms the flight recorder (obs/flight.hpp) by default: every on_request()
// feeds the rolling SLO windows, bucket closes poll destage lag and
// per-region SSD wear, and fault-path triggers (double fault, retry
// exhaustion, power cut) auto-dump <out_dir>/flight.json mid-run.
//
// Lifecycle: construct (enables span tracing, resets the global registry so
// the snapshot covers exactly this run), attach sources, feed completions
// via on_request() — typically wired to EventSimulator::set_request_observer
// — then finish() to flush the artifacts and disable tracing.
//
// Buckets close every Options::ops_per_bucket completed requests; each
// WearSample carries the *delta* of every cumulative counter over the bucket
// plus point-in-time gauges, so integrating a column over the series
// reproduces the end-of-run totals (the validator checks this).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache_stats.hpp"
#include "cache/policy.hpp"
#include "common/units.hpp"
#include "obs/health.hpp"
#include "obs/wear.hpp"

namespace kdd {

class KddCache;
class SsdModel;
struct FaultCounters;

class TelemetrySession {
 public:
  struct Options {
    std::string out_dir = "telemetry";
    /// Completed requests per WearSample bucket.
    std::uint64_t ops_per_bucket = 2048;
    /// Span ring capacity while the session is live. 64 Ki spans keeps the
    /// Chrome trace artifact under ~10 MB; the ring keeps the newest spans.
    std::size_t trace_capacity = 1u << 16;
    /// Trace 1-in-N requests (see TraceBuffer::set_sample_period). 256 keeps
    /// the instrumented replay inside the perf gate's 5% overhead budget
    /// with margin for machine noise (a sampled request records its full
    /// span chain — ring appends plus stage aggregates — so the sampling
    /// period is the main trace-cost knob), while a replay still samples
    /// hundreds to thousands of requests; set to 1 to trace every request.
    std::uint32_t trace_sample_period = 256;
    /// What the sample's `t` field counts ("sim_us" for EventSimulator runs).
    std::string t_unit = "sim_us";
    /// Run the continuous health engine (rolling SLO windows + burn-rate
    /// alerts) and write <out_dir>/health.json at finish().
    bool health = true;
    obs::HealthConfig health_config{};
    /// Arm the flight recorder with <out_dir>/flight.json as the auto-dump
    /// target and write a final dump at finish().
    bool flight = true;
    std::size_t flight_capacity = 4096;
    /// Physical-block regions for the wear-imbalance rule (SsdModel
    /// region_erase_counts granularity).
    std::size_t wear_regions = 8;
  };

  explicit TelemetrySession(Options opts);
  ~TelemetrySession();  ///< disables tracing if finish() was never called

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  // -- Sources (not owned; optional; must outlive finish()) -----------------
  void attach_policy(CachePolicy* policy);
  void attach_kdd(KddCache* kdd);
  void attach_ssd(const SsdModel* ssd);
  void attach_fault_counters(const FaultCounters* counters);

  /// Request-completion hook (EventSimulator::set_request_observer). `now_us`
  /// is the simulated completion time, `latency_us` the request's latency.
  /// Inline: this runs once per simulated request, so the common case (bucket
  /// not yet full) must stay a handful of adds; only the bucket close — once
  /// every ops_per_bucket requests — takes the out-of-line path.
  ///
  /// Health observations are staged and replayed to the engine in batches of
  /// kHealthBatch: the engine sees the identical (timestamp, latency)
  /// sequence — so window contents, eval points and alert edges are
  /// byte-identical to unbatched feeding — but its rings are touched in one
  /// warm burst instead of once per request, which the simulator's working
  /// set would otherwise evict between requests (measured against the perf
  /// gate's 5% replay budget). A live scraper reads the engine at most one
  /// batch behind.
  void on_request(std::uint64_t now_us, std::uint64_t latency_us) {
    ++bucket_ops_;
    latency_sum_us_ += static_cast<double>(latency_us);
    if (latency_us > latency_max_us_) latency_max_us_ = latency_us;
    last_t_ = static_cast<double>(now_us);
    if (health_) {
      staged_t_us_[staged_n_] = now_us;
      staged_latency_us_[staged_n_] = latency_us;
      if (++staged_n_ == kHealthBatch) flush_health();
    }
    if (bucket_ops_ >= opts_.ops_per_bucket) close_bucket(last_t_);
  }

  /// Closes the in-progress bucket (no-op when it is empty).
  void close_bucket(double t);

  /// Flushes the four artifacts into out_dir and disables tracing. Returns
  /// false if any file could not be written. Idempotent.
  bool finish();

  const obs::WearSeries& series() const { return series_; }
  /// The session's health engine (null when Options::health is false).
  obs::HealthEngine* health() { return health_.get(); }

 private:
  static constexpr std::size_t kHealthBatch = 128;

  void poll_sources(obs::WearSample& sample);
  /// Replays the staged request observations into the health engine (in
  /// arrival order, original timestamps). Runs when the staging buffer
  /// fills, at bucket close, and at finish().
  void flush_health();

  Options opts_;
  obs::WearSeries series_;
  std::unique_ptr<obs::HealthEngine> health_;

  CachePolicy* policy_ = nullptr;
  KddCache* kdd_ = nullptr;
  const SsdModel* ssd_ = nullptr;
  const FaultCounters* faults_ = nullptr;

  // In-progress bucket accumulators.
  std::uint64_t bucket_ops_ = 0;
  double latency_sum_us_ = 0.0;
  std::uint64_t latency_max_us_ = 0;
  double last_t_ = 0.0;

  // Staged health observations (see on_request).
  std::uint64_t staged_t_us_[kHealthBatch];
  std::uint64_t staged_latency_us_[kHealthBatch];
  std::size_t staged_n_ = 0;

  // Previous cumulative values (for per-bucket deltas).
  CacheStats prev_stats_;
  std::uint64_t prev_log_gc_ = 0;
  std::uint64_t prev_fallbacks_ = 0;
  std::uint64_t prev_healed_ = 0;
  std::uint64_t prev_media_errors_ = 0;
  std::uint64_t prev_transient_ = 0;
  std::uint64_t prev_corruptions_ = 0;
  std::uint64_t prev_repairs_ = 0;

  bool finished_ = false;
};

}  // namespace kdd
