#include "harness/harness.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"
#include "kdd/kdd_cache.hpp"
#include "policies/leavo.hpp"
#include "policies/nocache.hpp"
#include "policies/write_around.hpp"
#include "policies/write_back.hpp"
#include "policies/write_through.hpp"

namespace kdd {

std::string policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNossd: return "Nossd";
    case PolicyKind::kWT: return "WT";
    case PolicyKind::kWA: return "WA";
    case PolicyKind::kLeavO: return "LeavO";
    case PolicyKind::kKdd: return "KDD";
    case PolicyKind::kWB: return "WB";
  }
  return "?";
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, const PolicyConfig& config,
                                         const RaidGeometry& geo) {
  switch (kind) {
    case PolicyKind::kNossd: return std::make_unique<NoCachePolicy>(geo);
    case PolicyKind::kWT: return std::make_unique<WriteThroughPolicy>(config, geo);
    case PolicyKind::kWA: return std::make_unique<WriteAroundPolicy>(config, geo);
    case PolicyKind::kLeavO: return std::make_unique<LeavOPolicy>(config, geo);
    case PolicyKind::kKdd: return std::make_unique<KddCache>(config, geo);
    case PolicyKind::kWB: return std::make_unique<WriteBackPolicy>(config, geo);
  }
  return nullptr;
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, const PolicyConfig& config,
                                         RaidArray* array, SsdModel* ssd) {
  switch (kind) {
    case PolicyKind::kNossd: return std::make_unique<NoCachePolicy>(array);
    case PolicyKind::kWT:
      return std::make_unique<WriteThroughPolicy>(config, array, ssd);
    case PolicyKind::kWA:
      return std::make_unique<WriteAroundPolicy>(config, array, ssd);
    case PolicyKind::kLeavO: return std::make_unique<LeavOPolicy>(config, array, ssd);
    case PolicyKind::kKdd: return std::make_unique<KddCache>(config, array, ssd);
    case PolicyKind::kWB: return std::make_unique<WriteBackPolicy>(config, array, ssd);
  }
  return nullptr;
}

RaidGeometry paper_geometry(Lba max_page) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 16;  // 64 KiB chunks
  const std::uint64_t needed = max_page + 1;
  const std::uint64_t per_disk = (needed + geo.data_disks() - 1) / geo.data_disks();
  geo.disk_pages = (per_disk / geo.chunk_pages + 2) * geo.chunk_pages;
  return geo;
}

CacheStats run_counter_trace(CachePolicy& policy, const Trace& trace,
                             std::uint64_t array_pages) {
  KDD_CHECK(array_pages > 0);
  for (const TraceRecord& rec : trace.records) {
    for (std::uint32_t i = 0; i < rec.pages; ++i) {
      const Lba lba = (rec.page + i) % array_pages;
      if (rec.is_read) {
        policy.read(lba, {}, nullptr);
      } else {
        policy.write(lba, {}, nullptr);
      }
    }
  }
  policy.flush(nullptr);
  return policy.stats();
}

SimConfig paper_sim_config(std::uint32_t num_disks) {
  SimConfig cfg;
  cfg.num_disks = num_disks;
  // 7,200 RPM SATA disk with caches disabled; SATA MLC SSD, 8 channels —
  // the class of hardware in Section IV-B1.
  cfg.hdd = HddTimingConfig{};
  cfg.ssd = SsdTimingConfig{};
  return cfg;
}

double experiment_scale(double fallback) {
  if (const char* env = std::getenv("KDD_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return fallback;
}

}  // namespace kdd
