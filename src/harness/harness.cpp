#include "harness/harness.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/check.hpp"
#include "kdd/kdd_cache.hpp"
#include "policies/leavo.hpp"
#include "policies/nocache.hpp"
#include "policies/write_around.hpp"
#include "policies/write_back.hpp"
#include "policies/write_through.hpp"

namespace kdd {

std::string policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kNossd: return "Nossd";
    case PolicyKind::kWT: return "WT";
    case PolicyKind::kWA: return "WA";
    case PolicyKind::kLeavO: return "LeavO";
    case PolicyKind::kKdd: return "KDD";
    case PolicyKind::kWB: return "WB";
  }
  return "?";
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, const PolicyConfig& config,
                                         const RaidGeometry& geo) {
  switch (kind) {
    case PolicyKind::kNossd: return std::make_unique<NoCachePolicy>(geo);
    case PolicyKind::kWT: return std::make_unique<WriteThroughPolicy>(config, geo);
    case PolicyKind::kWA: return std::make_unique<WriteAroundPolicy>(config, geo);
    case PolicyKind::kLeavO: return std::make_unique<LeavOPolicy>(config, geo);
    case PolicyKind::kKdd: return std::make_unique<KddCache>(config, geo);
    case PolicyKind::kWB: return std::make_unique<WriteBackPolicy>(config, geo);
  }
  return nullptr;
}

std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, const PolicyConfig& config,
                                         RaidArray* array, SsdModel* ssd) {
  switch (kind) {
    case PolicyKind::kNossd: return std::make_unique<NoCachePolicy>(array);
    case PolicyKind::kWT:
      return std::make_unique<WriteThroughPolicy>(config, array, ssd);
    case PolicyKind::kWA:
      return std::make_unique<WriteAroundPolicy>(config, array, ssd);
    case PolicyKind::kLeavO: return std::make_unique<LeavOPolicy>(config, array, ssd);
    case PolicyKind::kKdd: return std::make_unique<KddCache>(config, array, ssd);
    case PolicyKind::kWB: return std::make_unique<WriteBackPolicy>(config, array, ssd);
  }
  return nullptr;
}

RaidGeometry paper_geometry(Lba max_page) {
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 16;  // 64 KiB chunks
  const std::uint64_t needed = max_page + 1;
  const std::uint64_t per_disk = (needed + geo.data_disks() - 1) / geo.data_disks();
  geo.disk_pages = (per_disk / geo.chunk_pages + 2) * geo.chunk_pages;
  return geo;
}

CacheStats run_counter_trace(CachePolicy& policy, const Trace& trace,
                             std::uint64_t array_pages) {
  KDD_CHECK(array_pages > 0);
  for (const TraceRecord& rec : trace.records) {
    for (std::uint32_t i = 0; i < rec.pages; ++i) {
      const Lba lba = (rec.page + i) % array_pages;
      if (rec.is_read) {
        policy.read(lba, {}, nullptr);
      } else {
        policy.write(lba, {}, nullptr);
      }
    }
  }
  policy.flush(nullptr);
  return policy.stats();
}

SimConfig paper_sim_config(std::uint32_t num_disks) {
  SimConfig cfg;
  cfg.num_disks = num_disks;
  // 7,200 RPM SATA disk with caches disabled; SATA MLC SSD, 8 channels —
  // the class of hardware in Section IV-B1.
  cfg.hdd = HddTimingConfig{};
  cfg.ssd = SsdTimingConfig{};
  return cfg;
}

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void fill_replay_page(Lba lba, std::uint64_t version, std::uint64_t seed,
                      std::span<std::uint8_t> out) {
  KDD_CHECK(out.size() == kPageSize);
  std::uint64_t state = seed ^ (lba * 0x9e3779b97f4a7c15ull) ^
                        (version * 0xda942042e4dd58b5ull);
  constexpr std::size_t kWords = kPageSize / sizeof(std::uint64_t);
  // High-entropy head quarter: every (lba, version) pair is unique even if
  // the body collides. Low-entropy body: one stamp word repeated, so
  // successive versions of a page produce LZ-friendly XOR deltas.
  std::size_t i = 0;
  for (; i < kWords / 4; ++i) {
    const std::uint64_t w = splitmix64(state);
    std::memcpy(out.data() + i * sizeof w, &w, sizeof w);
  }
  const std::uint64_t stamp = splitmix64(state);
  for (; i < kWords; ++i) {
    std::memcpy(out.data() + i * sizeof stamp, &stamp, sizeof stamp);
  }
}

namespace {

struct ReplayOp {
  Lba lba = 0;
  std::uint64_t version = 0;
  bool is_read = false;
};

// Partition page requests by owning parity group. Each LBA belongs to
// exactly one group and therefore one thread, so per-LBA request order is
// trace order regardless of the interleaving across threads. Write
// versions are assigned during this single sequential pass, which makes
// the payload of every write independent of the thread count.
std::uint64_t partition_replay_ops(const RaidLayout& layout, const Trace& trace,
                                   std::uint64_t array_pages, unsigned threads,
                                   std::vector<std::vector<ReplayOp>>& shards) {
  shards.assign(threads, {});
  std::unordered_map<Lba, std::uint64_t> versions;
  std::uint64_t ops = 0;
  for (const TraceRecord& rec : trace.records) {
    for (std::uint32_t i = 0; i < rec.pages; ++i) {
      const Lba lba = (rec.page + i) % array_pages;
      const std::size_t shard =
          static_cast<std::size_t>(layout.group_of(lba) % threads);
      ReplayOp op;
      op.lba = lba;
      op.is_read = rec.is_read;
      op.version = rec.is_read ? versions[lba] : ++versions[lba];
      shards[shard].push_back(op);
      ++ops;
    }
  }
  return ops;
}

}  // namespace

ConcurrentReplayResult run_concurrent_trace(ConcurrentCache& cache,
                                            const RaidLayout& layout,
                                            const Trace& trace,
                                            std::uint64_t array_pages,
                                            unsigned threads, std::uint64_t seed) {
  KDD_CHECK(array_pages > 0);
  KDD_CHECK(threads > 0);
  using Op = ReplayOp;
  std::vector<std::vector<Op>> shards;
  const std::uint64_t ops =
      partition_replay_ops(layout, trace, array_pages, threads, shards);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&cache, &shards, t, seed] {
      Page buf = make_page();
      for (const Op& op : shards[t]) {
        if (op.is_read) {
          KDD_CHECK(cache.read(op.lba, buf) == IoStatus::kOk);
        } else {
          fill_replay_page(op.lba, op.version, seed, buf);
          KDD_CHECK(cache.write(op.lba, buf) == IoStatus::kOk);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  cache.flush();
  ConcurrentReplayResult result;
  result.stats = cache.stats();
  result.front = cache.front_stats();
  result.ops = ops;
  return result;
}

ConcurrentReplayResult run_concurrent_trace_async(
    ConcurrentCache& cache, const RaidLayout& layout, const Trace& trace,
    std::uint64_t array_pages, unsigned threads, std::uint64_t seed,
    unsigned queue_depth) {
  KDD_CHECK(array_pages > 0);
  KDD_CHECK(threads > 0);
  KDD_CHECK(queue_depth > 0);
  KDD_CHECK(cache.async_started());
  std::vector<std::vector<ReplayOp>> shards;
  const std::uint64_t ops =
      partition_replay_ops(layout, trace, array_pages, threads, shards);
  std::vector<std::thread> submitters;
  submitters.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    submitters.emplace_back([&cache, &shards, t, seed, queue_depth] {
      // Bounded slot pool: at most queue_depth requests from this submitter
      // are outstanding, and read targets stay pinned until completion.
      // Write payloads are copied by submit_write, but the slot still rides
      // to completion so the depth bound covers both kinds.
      std::vector<Page> slots(queue_depth, make_page());
      std::vector<unsigned> free_slots(queue_depth);
      for (unsigned i = 0; i < queue_depth; ++i) free_slots[i] = i;
      std::mutex mu;
      std::condition_variable cv;
      unsigned outstanding = 0;
      for (const ReplayOp& op : shards[t]) {
        unsigned slot;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] { return !free_slots.empty(); });
          slot = free_slots.back();
          free_slots.pop_back();
          ++outstanding;
        }
        auto done = [&mu, &cv, &free_slots, &outstanding, slot](IoStatus st) {
          KDD_CHECK(st == IoStatus::kOk);
          const std::lock_guard<std::mutex> lock(mu);
          free_slots.push_back(slot);
          --outstanding;
          cv.notify_all();
        };
        if (op.is_read) {
          KDD_CHECK(cache.submit_read(op.lba, slots[slot], std::move(done)));
        } else {
          fill_replay_page(op.lba, op.version, seed, slots[slot]);
          KDD_CHECK(cache.submit_write(op.lba, slots[slot], std::move(done)));
        }
      }
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return outstanding == 0; });
    });
  }
  for (std::thread& w : submitters) w.join();
  cache.drain_async();
  cache.flush();
  ConcurrentReplayResult result;
  result.stats = cache.stats();
  result.front = cache.front_stats();
  result.ops = ops;
  return result;
}

std::uint64_t replay_readback_digest(ConcurrentCache& cache,
                                     std::uint64_t array_pages) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a
  Page buf = make_page();
  for (Lba lba = 0; lba < array_pages; ++lba) {
    KDD_CHECK(cache.read(lba, buf) == IoStatus::kOk);
    for (const std::uint8_t b : buf) {
      h ^= b;
      h *= 0x100000001b3ull;
    }
  }
  return h;
}

double experiment_scale(double fallback) {
  if (const char* env = std::getenv("KDD_SCALE")) {
    const double v = std::atof(env);
    if (v > 0.0 && v <= 1.0) return v;
  }
  return fallback;
}

}  // namespace kdd
