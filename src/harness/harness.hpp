// Experiment harness: policy factory, counter-mode trace driver, and the
// default configurations shared by the per-figure bench binaries.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cache/policy.hpp"
#include "kdd/concurrent.hpp"
#include "sim/event_sim.hpp"
#include "trace/trace.hpp"

namespace kdd {

enum class PolicyKind { kNossd, kWT, kWA, kLeavO, kKdd, kWB };

std::string policy_kind_name(PolicyKind kind);

/// Counter-mode policy (Section IV-A methodology).
std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, const PolicyConfig& config,
                                         const RaidGeometry& geo);

/// Prototype-mode policy over a real array and SSD.
std::unique_ptr<CachePolicy> make_policy(PolicyKind kind, const PolicyConfig& config,
                                         RaidArray* array, SsdModel* ssd);

/// RAID-5 geometry matching the paper's testbed shape (5 disks, 64 KiB
/// chunks) with per-disk capacity sized so the array holds pages
/// [0, max_page].
RaidGeometry paper_geometry(Lba max_page);

/// Feeds the whole trace through the policy (counter mode, no timing),
/// splitting multi-page records, then flushes. Returns the final stats.
CacheStats run_counter_trace(CachePolicy& policy, const Trace& trace,
                             std::uint64_t array_pages);

/// Default timing configuration for the timed experiments (Section IV-B).
SimConfig paper_sim_config(std::uint32_t num_disks);

// ---------------------------------------------------------------------------
// Multi-threaded deterministic replay (real-mode policies behind a
// ConcurrentCache). Ops are partitioned across submitter threads by parity
// group, so every LBA's requests stay in trace order on one thread and the
// final *logical* state (array media + readback through the cache) is
// byte-identical for any thread count. See docs/performance.md.
// ---------------------------------------------------------------------------

/// Deterministic page image for write number `version` to `lba` under
/// `seed`. A low-entropy body with a high-entropy head: distinct versions
/// differ everywhere, but version-to-version deltas stay LZ-compressible the
/// way the paper's content-locality assumption expects.
void fill_replay_page(Lba lba, std::uint64_t version, std::uint64_t seed,
                      std::span<std::uint8_t> out);

struct ConcurrentReplayResult {
  CacheStats stats;                   ///< Policy stats after the final flush.
  ConcurrentCache::FrontStats front;  ///< Facade front-door counters.
  std::uint64_t ops = 0;              ///< Page-granular requests replayed.
};

/// Replays `trace` through `cache` using `threads` submitter threads. Write
/// payloads come from fill_replay_page; multi-page records are split into
/// page requests, each mapped to the thread owning its parity group
/// (`layout.group_of(lba) % threads`). Flushes and returns final stats.
ConcurrentReplayResult run_concurrent_trace(ConcurrentCache& cache,
                                            const RaidLayout& layout,
                                            const Trace& trace,
                                            std::uint64_t array_pages,
                                            unsigned threads, std::uint64_t seed);

/// Same replay through the async submit/complete path. The cache's engine
/// must be started (start_async). Each submitter keeps at most `queue_depth`
/// requests outstanding via a bounded slot pool; per-LBA order still holds
/// because one submitter owns each parity group and shard queues are FIFO.
ConcurrentReplayResult run_concurrent_trace_async(
    ConcurrentCache& cache, const RaidLayout& layout, const Trace& trace,
    std::uint64_t array_pages, unsigned threads, std::uint64_t seed,
    unsigned queue_depth);

/// FNV-1a digest of the logical address space [0, array_pages) read back
/// through the cache — the "byte-identical final state" check for the
/// multi-threaded replay mode.
std::uint64_t replay_readback_digest(ConcurrentCache& cache,
                                     std::uint64_t array_pages);

/// Experiment scale factor: reads KDD_SCALE from the environment (default
/// `fallback`), clamped to (0, 1]. Shrinks trace footprints/request counts
/// proportionally so benches finish quickly; EXPERIMENTS.md records the
/// scale each table was produced at.
double experiment_scale(double fallback = 0.25);

/// The three content-locality levels the paper evaluates (KDD-50 %, -25 %,
/// -12 % mean delta compression ratios).
inline constexpr double kLocalityLevels[3] = {0.50, 0.25, 0.12};

}  // namespace kdd
