#include "harness/drill.hpp"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "cache/nvram.hpp"
#include "common/rng.hpp"
#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"

namespace kdd {

DrillConfig::DrillConfig() {
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 4;
  geo.disk_pages = 256;
  ssd.logical_pages = 256;
  ssd.pages_per_block = 16;
  policy.ssd_pages = 256;
  policy.ways = 8;
}

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, std::span<const std::uint8_t> bytes) {
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

/// One pass's worth of stack (mirrors the torture rig: everything but the
/// KddCache and the RebuildEngine survives a power cut).
struct ReliabilityDrillRunner::Rig {
  explicit Rig(const DrillConfig& cfg)
      : array(cfg.geo),
        ssd(cfg.ssd),
        nvram(cfg.policy.staging_buffer_bytes, cfg.policy.metadata_buffer_entries),
        spares(cfg.spares),
        engine(&array, cfg.rebuild, &spares),
        scrub(&array, cfg.scrub),
        kdd(std::make_unique<KddCache>(cfg.policy, &array, &ssd, &nvram)) {
    kdd->bind_rebuild_engine(&engine);
  }

  ~Rig() {
    // The cache dtor clears the engine hooks; make sure it runs while the
    // engine is still alive (members destroy in reverse declaration order,
    // so `kdd` — declared last — already goes first; this is documentation).
    kdd.reset();
  }

  std::uint64_t disk_ops() const {
    return array.total_disk_reads() + array.total_disk_writes();
  }

  /// End-state digest: every page of [0, working_set) read back through the
  /// cache. Unwritten pages read as zeros and still feed the digest, so a
  /// page lost to a botched rebuild cannot hide.
  std::uint64_t readback_digest(Lba working_set) {
    static const Page kZero = make_page();
    std::uint64_t h = kFnvOffset;
    Page buf = make_page();
    for (Lba lba = 0; lba < working_set; ++lba) {
      if (kdd->read(lba, buf, nullptr) != IoStatus::kOk) {
        h = fnv1a(h, {});  // keep going; the caller flags the read failure
        ++failed_reads;
        continue;
      }
      const auto it = model.find(lba);
      if (buf != (it == model.end() ? kZero : it->second)) {
        end_mismatches.push_back(lba);
      }
      h = fnv1a(h, buf);
    }
    return h;
  }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  SparePool spares;
  RebuildEngine engine;
  ScrubScheduler scrub;
  std::unique_ptr<KddCache> kdd;

  std::unordered_map<Lba, Page> model;
  std::shared_ptr<PowerRail> rail;
  std::uint64_t failed_reads = 0;
  std::vector<Lba> end_mismatches;
  std::vector<std::uint64_t> request_costs;
};

ReliabilityDrillRunner::ReliabilityDrillRunner(DrillConfig config)
    : config_(std::move(config)) {}

DrillReport ReliabilityDrillRunner::run(std::uint64_t seed) {
  DrillReport rep;
  rep.seed = seed;

  const std::uint64_t total_groups = config_.geo.num_groups();
  const std::uint64_t cut_threshold = total_groups * 3 / 10;

  // The two passes replay the identical seeded request stream; the faulted
  // pass additionally fails disks, rebuilds, scrubs and (optionally) tears
  // power. `faulted` toggles those.
  const auto run_pass = [&](Rig& rig, bool faulted) -> std::uint64_t {
    static const Page kZeroPage = make_page();
    const ContentGenerator gen(seed * 0x2545f4914f6cdd1dull + 7);
    Rng rng(seed);
    std::size_t next_fail = 0;
    bool cut_pending = faulted && config_.power_cut_mid_rebuild;

    if (faulted) {
      rig.rail = std::make_shared<PowerRail>();
      rig.array.attach_rail(rig.rail);
      rig.kdd->cache_ssd().faults()->attach_rail(rig.rail);
    }

    for (int i = 0; i < config_.requests; ++i) {
      if (faulted && next_fail < config_.fail_points.size() &&
          static_cast<double>(i) >=
              config_.fail_points[next_fail].fraction *
                  static_cast<double>(config_.requests)) {
        // Rolling replacement: an operator never pulls the next disk while a
        // rebuild is still running — drain it first.
        int stalls = 0;
        while (rig.engine.rebuild_active() && stalls < 4096) {
          if (rig.engine.pump(nullptr, /*urgent=*/true) == 0) ++stalls;
        }
        rep.stale_rebuild_folds += rig.array.rebuild_stale_folds();
        if (!rig.kdd->handle_disk_failure_online(
                config_.fail_points[next_fail].disk)) {
          rep.violations.push_back("online rebuild failed to start (no spare?)");
        } else {
          ++rep.rebuilds_started;
        }
        ++next_fail;
      }

      const std::uint64_t ops_before = rig.disk_ops();
      const Lba lba = rng.next_below(config_.working_set);
      if (rng.next_bool(config_.write_prob)) {
        const auto it = rig.model.find(lba);
        const Page data = it == rig.model.end()
                              ? gen.base_page(lba)
                              : gen.mutate(it->second, config_.content_locality, rng);
        if (rig.kdd->write(lba, data, nullptr) == IoStatus::kOk) {
          rig.model[lba] = data;
        } else {
          const GroupId g = rig.array.layout().group_of(lba);
          rep.violations.push_back(
              "write failed at lba " + std::to_string(lba) + " (req " +
              std::to_string(i) + ", group " + std::to_string(g) + ", down=" +
              std::to_string(rig.array.page_down(lba)) + ", stale=" +
              std::to_string(rig.array.group_stale(g)) + ", cursor=" +
              std::to_string(rig.array.rebuild_cursor()) + ", cache_stale=" +
              std::to_string(rig.kdd->stale_groups()) + ", old=" +
              std::to_string(rig.kdd->old_pages()) + ", cut_fired=" +
              std::to_string(rep.power_cut_fired) + ")");
        }
      } else {
        Page buf = make_page();
        if (rig.kdd->read(lba, buf, nullptr) == IoStatus::kOk) {
          const auto it = rig.model.find(lba);
          const Page& expect = it == rig.model.end() ? kZeroPage : it->second;
          if (buf != expect) {
            rep.violations.push_back("read returned wrong data at lba " +
                                     std::to_string(lba));
          }
        } else {
          rep.violations.push_back("read failed at lba " + std::to_string(lba));
        }
      }
      rig.request_costs.push_back(rig.disk_ops() - ops_before);
      if (faulted) ++rep.requests_completed;

      // Background scrub ticks on the same foreground clock.
      rig.scrub.note_foreground();
      rig.scrub.tick();

      if (cut_pending && rig.nvram.rebuild_active &&
          rig.nvram.rebuild_cursor >= cut_threshold) {
        // Power cut mid-rebuild, between requests: DRAM (cache + in-core
        // rebuild cursor) dies; NVRAM and the half-rebuilt media survive.
        cut_pending = false;
        rep.power_cut_fired = true;
        rig.rail->cut();
        rig.rail->restore();
        const std::uint32_t disk = rig.nvram.rebuild_disk;
        const GroupId cursor = rig.nvram.rebuild_cursor;
        rig.kdd.reset();  // hooks cleared while the engine is still alive
        rig.array.rebuild_abandon();
        RebuildCheckpoint cp;
        cp.disk = disk;
        cp.cursor = cursor;
        cp.active = true;
        rig.engine.resume(cp);  // BEFORE the recovering cache: the un-rebuilt
                                // region must read as down, not as garbage
        if (rig.array.rebuild_cursor() != cursor) {
          rep.violations.push_back("resume lost checkpointed rebuild progress");
        }
        rep.checkpoint_resumed = true;
        rig.kdd = std::make_unique<KddCache>(config_.policy, &rig.array,
                                             &rig.ssd, &rig.nvram,
                                             /*recover=*/true);
        rig.kdd->cache_ssd().faults()->attach_rail(rig.rail);
        rig.kdd->bind_rebuild_engine(&rig.engine);
      }
    }

    // Drain: finish any in-flight rebuild with urgent pumps, then flush.
    int stalls = 0;
    while (rig.engine.rebuild_active() && stalls < 4096) {
      if (rig.engine.pump(nullptr, /*urgent=*/true) == 0) ++stalls;
    }
    rep.stale_rebuild_folds += rig.array.rebuild_stale_folds();
    rig.kdd->flush(nullptr);
    return rig.readback_digest(config_.working_set);
  };

  const auto p99 = [](std::vector<std::uint64_t>& costs) -> std::uint64_t {
    if (costs.empty()) return 0;
    std::sort(costs.begin(), costs.end());
    return costs[std::min(costs.size() - 1, (costs.size() * 99) / 100)];
  };

  {
    Rig healthy(config_);
    rep.healthy_digest = run_pass(healthy, /*faulted=*/false);
    rep.healthy_p99_ops = p99(healthy.request_costs);
    if (healthy.failed_reads != 0) {
      rep.violations.push_back("healthy pass had failed readback reads");
    }
  }
  {
    Rig faulted(config_);
    rep.faulted_digest = run_pass(faulted, /*faulted=*/true);
    rep.faulted_p99_ops = p99(faulted.request_costs);
    rep.rebuilds_completed = faulted.engine.rebuilds_completed();
    rep.degraded_reads = faulted.array.degraded_reads();
    rep.degraded_cache_hits = faulted.kdd->degraded_cache_hits();
    rep.degraded_delta_folds = faulted.kdd->degraded_delta_folds();
    rep.barrier_deferrals = faulted.engine.barrier_deferrals();
    rep.requests_while_degraded =
        faulted.engine.dwell_ops(ArrayHealth::kDegraded) +
        faulted.engine.dwell_ops(ArrayHealth::kRebuilding);
    rep.scrub_groups = faulted.scrub.groups_scrubbed();
    rep.scrub_repairs = faulted.scrub.repairs();
    rep.scrub_passes = faulted.scrub.passes();

    if (faulted.failed_reads != 0) {
      rep.violations.push_back("faulted pass had failed readback reads");
    }
    for (std::size_t m = 0; m < faulted.end_mismatches.size() && m < 4; ++m) {
      const Lba lba = faulted.end_mismatches[m];
      rep.violations.push_back(
          "end-state page differs from model at lba " + std::to_string(lba) +
          " (group " +
          std::to_string(faulted.array.layout().group_of(lba)) + ")");
    }
    if (faulted.engine.rebuild_active() || faulted.array.degraded()) {
      rep.violations.push_back("array still degraded at end of drill");
    }
    if (rep.rebuilds_completed != rep.rebuilds_started) {
      rep.violations.push_back("not every started rebuild completed");
    }
    if (rep.stale_rebuild_folds != 0) {
      rep.violations.push_back(
          "rebuild reconstructed groups from stale parity");
    }
    if (!faulted.array.scrub().empty()) {
      rep.violations.push_back("final parity scrub found inconsistent groups");
    }
  }
  if (rep.healthy_digest != rep.faulted_digest) {
    rep.violations.push_back(
        "end-state digest diverged between healthy and faulted runs");
  }
  return rep;
}

}  // namespace kdd
