// Crash-point torture harness (tentpole, part 3): drives a seeded KDD
// workload against the prototype stack, tears power at a *uniformly random
// media-write index* on the cache SSD (every write on the shared PowerRail
// domain — all RAID disks included — fails from that instant), then restores
// power, recovers, and verifies full data integrity against a ground-truth
// model.
//
// The crash point is chosen by a dry run: the same seeded workload is first
// executed without faults to count the cache device's media writes W, then
// the real run arms the power-cut trigger at cut ~ U[0, W). This guarantees
// coverage of every write class — DAZ admissions, DEZ delta commits, metadata
// log appends, GC rewrites — in proportion to how often they occur, with no
// hand-picked crash points.
//
// Integrity contract checked per seed (violations are collected, not
// asserted, so callers can aggregate across hundreds of seeds):
//   * every write acknowledged kOk before the cut is durable: after recovery
//     the page reads back with exactly the acknowledged contents;
//   * the single in-flight request at the instant of the cut is atomic: the
//     page reads back as either its old or its new contents, never a blend;
//   * the recovered cache keeps serving reads and writes correctly;
//   * after flush, the RAID parity scrub reports zero inconsistent groups.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "blockdev/fault_device.hpp"
#include "blockdev/ssd_model.hpp"
#include "cache/policy.hpp"
#include "common/units.hpp"
#include "raid/layout.hpp"

namespace kdd {

struct TortureConfig {
  /// Requests in the pre-crash workload (the dry run uses the same count).
  int requests = 500;
  /// Requests replayed after recovery to prove the stack still works.
  int post_recovery_requests = 200;
  Lba working_set = 300;
  double write_prob = 0.55;
  double content_locality = 0.25;

  RaidGeometry geo;      ///< defaulted to a small RAID-5 in the constructor
  SsdConfig ssd;         ///< small SSD; logical_pages must equal policy.ssd_pages
  PolicyConfig policy;

  /// run_rebuild_case: which disk fails, and how far (as a fraction of the
  /// array's groups) the online rebuild must have progressed before power is
  /// torn. The cut lands between requests — the ambiguity under test is the
  /// rebuild checkpoint, not write atomicity (run_case covers that).
  std::uint32_t rebuild_fail_disk = 1;
  double rebuild_cut_fraction = 0.3;

  TortureConfig();
};

struct TortureReport {
  std::uint64_t seed = 0;
  std::uint64_t total_media_writes = 0;  ///< cache-SSD writes in the dry run
  std::uint64_t cut_after = 0;           ///< media writes let through before the tear
  bool cut_fired = false;
  int requests_completed = 0;  ///< pre-crash requests finished (incl. in-flight)

  /// LBA of the request in flight when power died (kInvalidLba if the cut
  /// landed between requests, e.g. the op that tore still acked OK).
  Lba in_flight_lba = kInvalidLba;
  bool in_flight_read_back_new = false;  ///< it recovered as the new version

  std::size_t pages_verified = 0;
  FaultCounters cache_faults;  ///< cache-SSD decorator counters at cut time
  /// Ops rejected while the rail was down, summed over the whole power domain
  /// (cache SSD + every RAID disk): proves the cut landed mid-workload.
  std::uint64_t domain_power_cut_rejects = 0;

  // ---- segment staging (the cut can land mid-segment-flush) ---------------
  std::uint64_t segments_recovered = 0;  ///< in-flight segment proved complete
  std::uint64_t segments_discarded = 0;  ///< unsealed segment invalidated
  std::uint64_t segment_pages_discarded = 0;  ///< exactly its header's page list

  // ---- run_gc_crash_case only (power cut pinned mid-GC-relocation) --------
  /// Delta-zone GC relocation writes observed in the dry run (0 = the
  /// workload never produced a GC victim; the case degenerates to a no-op).
  std::uint64_t gc_relocation_writes = 0;

  // ---- run_rebuild_case only (power cut during an online rebuild) ---------
  std::uint64_t rebuild_cursor_at_cut = 0;     ///< NVRAM checkpoint at the tear
  std::uint64_t rebuild_cursor_at_resume = 0;  ///< cursor the engine resumed at
  bool checkpoint_survived = false;  ///< NVRAM still said "rebuilding disk d"
  bool rebuild_completed = false;
  /// Writes the replacement disk absorbed while finishing the resumed
  /// rebuild — bounded by the groups *beyond* the checkpoint (plus destage
  /// parity traffic), proving completed chunks were not re-reconstructed.
  std::uint64_t new_disk_writes_after_resume = 0;

  /// Empty == the seed passed. Each entry is a human-readable description of
  /// one integrity violation.
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Runs independent crash-recover-verify cycles; each seed builds a fresh
/// stack (RaidArray + SsdModel + NVRAM + KddCache), so seeds are isolated.
class TortureRunner {
 public:
  explicit TortureRunner(TortureConfig config = {});

  /// Full cycle: dry run -> pick uniform crash point -> real run with power
  /// cut -> recovery -> integrity verification -> post-recovery workload ->
  /// flush + parity scrub.
  TortureReport run_seed(std::uint64_t seed);

  /// As run_seed but with a caller-chosen crash point (media-write index on
  /// the cache SSD). Used to pin corner cases: cut_after = 0 tears the very
  /// first cache write; a huge value never fires and degenerates to a clean
  /// power-down-after-idle cycle.
  TortureReport run_case(std::uint64_t seed, std::uint64_t cut_after);

  /// Crash pinned mid-GC-relocation: a dry run records the cache media-write
  /// index of every delta-zone GC relocation write (via
  /// KddCache::set_gc_write_hook), then the real run tears power at one of
  /// those marks — the destination write of a live-delta move is the first
  /// operation the dead rail rejects. Proves the GC's write-before-map
  /// discipline: a live delta is never lost and a reclaimed extent is never
  /// resurrected, whichever side of the torn write the mappings landed on.
  TortureReport run_gc_crash_case(std::uint64_t seed);

  /// Power-cut-during-rebuild cycle: seeded workload -> online disk failure
  /// (degraded mode, incremental rebuild interleaved with foreground I/O) ->
  /// power torn once the NVRAM rebuild checkpoint passes
  /// rebuild_cut_fraction -> restore -> resume from the checkpoint (without
  /// re-reconstructing completed chunks) -> recover the cache -> finish the
  /// rebuild -> verify integrity, then flush + clean scrub.
  TortureReport run_rebuild_case(std::uint64_t seed);

  const TortureConfig& config() const { return config_; }

 private:
  struct Rig;

  /// Executes up to config_.requests seeded requests against rig.kdd,
  /// maintaining the truth model. Stops early once the rail is down. Returns
  /// the number of requests completed or in flight.
  int run_workload(Rig& rig, std::uint64_t seed, int requests, TortureReport* report);

  void verify_against_model(Rig& rig, TortureReport* report);

  TortureConfig config_;
};

}  // namespace kdd
