#include "trace/trace_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

#include "common/check.hpp"

namespace kdd {

namespace {

constexpr std::uint64_t kSectorsPerPage = kPageSize / 512;

/// Splits a CSV line into at most `max_fields` fields (in place, no copies).
std::size_t split_csv(char* line, char** fields, std::size_t max_fields) {
  std::size_t n = 0;
  char* p = line;
  while (n < max_fields && p) {
    fields[n++] = p;
    char* comma = std::strchr(p, ',');
    if (comma) {
      *comma = '\0';
      p = comma + 1;
    } else {
      p = nullptr;
    }
  }
  return n;
}

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

FilePtr open_or_throw(const std::string& path, const char* mode) {
  FilePtr f(std::fopen(path.c_str(), mode));
  if (!f) throw std::runtime_error("cannot open trace file: " + path);
  return f;
}

}  // namespace

Trace read_spc_trace(const std::string& path, const std::string& name) {
  FilePtr f = open_or_throw(path, "r");
  Trace trace;
  trace.name = name;
  char line[512];
  char* fields[8];
  while (std::fgets(line, sizeof line, f.get())) {
    if (split_csv(line, fields, 8) < 5) continue;
    char* end = nullptr;
    const std::uint64_t sector = std::strtoull(fields[1], &end, 10);
    const std::uint64_t bytes = std::strtoull(fields[2], &end, 10);
    const char op = fields[3][0];
    const double ts_sec = std::strtod(fields[4], &end);
    if (bytes == 0) continue;
    if (op != 'r' && op != 'R' && op != 'w' && op != 'W') continue;
    TraceRecord r;
    r.time_us = static_cast<SimTime>(ts_sec * 1e6);
    r.page = sector / kSectorsPerPage;
    const std::uint64_t end_sector = sector + (bytes + 511) / 512;
    const std::uint64_t end_page = (end_sector + kSectorsPerPage - 1) / kSectorsPerPage;
    r.pages = static_cast<std::uint32_t>(end_page - r.page);
    if (r.pages == 0) r.pages = 1;
    r.is_read = op == 'r' || op == 'R';
    trace.records.push_back(r);
  }
  return trace;
}

Trace read_msr_trace(const std::string& path, const std::string& name) {
  FilePtr f = open_or_throw(path, "r");
  Trace trace;
  trace.name = name;
  char line[512];
  char* fields[8];
  SimTime first_ts = 0;
  bool have_first = false;
  while (std::fgets(line, sizeof line, f.get())) {
    if (split_csv(line, fields, 8) < 6) continue;
    char* end = nullptr;
    const std::uint64_t ticks = std::strtoull(fields[0], &end, 10);  // 100 ns units
    const char* type = fields[3];
    const std::uint64_t offset = std::strtoull(fields[4], &end, 10);
    const std::uint64_t bytes = std::strtoull(fields[5], &end, 10);
    if (bytes == 0) continue;
    const bool is_read = type[0] == 'R' || type[0] == 'r';
    const bool is_write = type[0] == 'W' || type[0] == 'w';
    if (!is_read && !is_write) continue;
    const SimTime ts = ticks / 10;  // 100 ns -> us
    if (!have_first) {
      first_ts = ts;
      have_first = true;
    }
    TraceRecord r;
    r.time_us = ts - first_ts;
    r.page = offset / kPageSize;
    const std::uint64_t end_page = (offset + bytes + kPageSize - 1) / kPageSize;
    r.pages = static_cast<std::uint32_t>(end_page - r.page);
    if (r.pages == 0) r.pages = 1;
    r.is_read = is_read;
    trace.records.push_back(r);
  }
  return trace;
}

void write_canonical_trace(const Trace& trace, const std::string& path) {
  FilePtr f = open_or_throw(path, "w");
  for (const TraceRecord& r : trace.records) {
    std::fprintf(f.get(), "%llu,%llu,%u,%c\n",
                 static_cast<unsigned long long>(r.time_us),
                 static_cast<unsigned long long>(r.page), r.pages,
                 r.is_read ? 'R' : 'W');
  }
}

Trace read_canonical_trace(const std::string& path, const std::string& name) {
  FilePtr f = open_or_throw(path, "r");
  Trace trace;
  trace.name = name;
  char line[256];
  char* fields[4];
  while (std::fgets(line, sizeof line, f.get())) {
    if (split_csv(line, fields, 4) < 4) continue;
    char* end = nullptr;
    TraceRecord r;
    r.time_us = std::strtoull(fields[0], &end, 10);
    r.page = std::strtoull(fields[1], &end, 10);
    r.pages = static_cast<std::uint32_t>(std::strtoul(fields[2], &end, 10));
    r.is_read = fields[3][0] == 'R';
    if (r.pages == 0) continue;
    trace.records.push_back(r);
  }
  return trace;
}

}  // namespace kdd
