// Canonical block-level trace representation plus the statistics the paper's
// Table I reports (unique pages touched, request counts, read ratio).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace kdd {

struct TraceRecord {
  SimTime time_us = 0;
  Lba page = 0;           ///< first page touched (4 KiB granularity)
  std::uint32_t pages = 1;
  bool is_read = true;
};

struct Trace {
  std::string name;
  std::vector<TraceRecord> records;

  SimTime duration_us() const {
    return records.empty() ? 0 : records.back().time_us - records.front().time_us;
  }
};

/// Table I-style characteristics.
struct TraceStats {
  std::uint64_t unique_pages_total = 0;
  std::uint64_t unique_pages_read = 0;
  std::uint64_t unique_pages_written = 0;
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  Lba max_page = 0;  ///< highest page touched (footprint upper bound)

  double read_ratio() const {
    const std::uint64_t total = read_requests + write_requests;
    return total ? static_cast<double>(read_requests) / static_cast<double>(total) : 0.0;
  }
};

TraceStats compute_stats(const Trace& trace);

/// Remaps request timestamps to span `target_duration_us`, preserving the
/// relative arrival pattern (used to replay a long trace in a shorter
/// open-loop experiment, Section IV-B2).
void rescale_duration(Trace& trace, SimTime target_duration_us);

}  // namespace kdd
