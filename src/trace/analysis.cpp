#include "trace/analysis.hpp"

#include <bit>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace kdd {

namespace {

/// Fenwick tree over access slots; counts "still most-recent" accesses so a
/// prefix sum between two timestamps yields the stack distance exactly.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t i, std::int64_t delta) {
    for (++i; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  std::int64_t prefix(std::size_t i) const {  // sum of [0, i)
    std::int64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

std::size_t distance_bucket(std::uint64_t distance) {
  return static_cast<std::size_t>(std::bit_width(distance + 1)) - 1;
}

}  // namespace

double ReuseProfile::lru_hit_ratio(std::uint64_t pages) const {
  if (total_accesses == 0) return 0.0;
  std::uint64_t hits = 0;
  for (std::size_t k = 0; k < distance_histogram.size(); ++k) {
    const std::uint64_t bucket_lo = (1ull << k) - 1;
    const std::uint64_t bucket_hi = (1ull << (k + 1)) - 2;  // inclusive
    if (bucket_hi < pages) {
      hits += distance_histogram[k];
    } else if (bucket_lo < pages) {
      // Partial bucket: assume uniform spread inside the bucket.
      const double frac = static_cast<double>(pages - bucket_lo) /
                          static_cast<double>(bucket_hi - bucket_lo + 1);
      hits += static_cast<std::uint64_t>(
          frac * static_cast<double>(distance_histogram[k]));
    }
  }
  return static_cast<double>(hits) / static_cast<double>(total_accesses);
}

ReuseProfile compute_reuse_profile(const Trace& trace, bool writes_only) {
  // Count page-granular accesses first to size the slot array.
  std::size_t slots = 0;
  for (const TraceRecord& r : trace.records) {
    if (writes_only && r.is_read) continue;
    slots += r.pages;
  }
  ReuseProfile profile;
  Fenwick fen(slots);
  std::unordered_map<Lba, std::size_t> last_slot;
  last_slot.reserve(slots / 4 + 16);

  std::size_t now = 0;
  for (const TraceRecord& r : trace.records) {
    if (writes_only && r.is_read) continue;
    for (std::uint32_t i = 0; i < r.pages; ++i) {
      const Lba page = r.page + i;
      ++profile.total_accesses;
      const auto it = last_slot.find(page);
      if (it == last_slot.end()) {
        ++profile.cold_accesses;
      } else {
        // Stack distance = number of distinct pages touched since the last
        // access = count of "most recent" markers after that slot.
        const auto distance = static_cast<std::uint64_t>(
            fen.prefix(now) - fen.prefix(it->second + 1));
        const std::size_t bucket = distance_bucket(distance);
        if (profile.distance_histogram.size() <= bucket) {
          profile.distance_histogram.resize(bucket + 1, 0);
        }
        ++profile.distance_histogram[bucket];
        fen.add(it->second, -1);  // the old position is no longer most-recent
      }
      fen.add(now, +1);
      last_slot[page] = now;
      ++now;
    }
  }
  return profile;
}

SequentialityProfile compute_sequentiality(const Trace& trace) {
  SequentialityProfile p;
  if (trace.records.empty()) return p;
  std::uint64_t sequential = 0;
  std::uint64_t pages = 0;
  Lba prev_end = kInvalidLba;
  for (const TraceRecord& r : trace.records) {
    if (r.page == prev_end) ++sequential;
    prev_end = r.page + r.pages;
    pages += r.pages;
  }
  p.sequential_fraction =
      static_cast<double>(sequential) / static_cast<double>(trace.records.size());
  p.mean_request_pages =
      static_cast<double>(pages) / static_cast<double>(trace.records.size());
  return p;
}

std::vector<WorkingSetPoint> compute_working_set_profile(const Trace& trace,
                                                         SimTime window_us) {
  KDD_CHECK(window_us > 0);
  std::vector<WorkingSetPoint> out;
  if (trace.records.empty()) return out;
  std::unordered_set<Lba> seen;
  WorkingSetPoint current;
  current.window_start_us = trace.records.front().time_us / window_us * window_us;
  for (const TraceRecord& r : trace.records) {
    const SimTime window_start = r.time_us / window_us * window_us;
    if (window_start != current.window_start_us) {
      current.distinct_pages = seen.size();
      out.push_back(current);
      seen.clear();
      current = WorkingSetPoint{};
      current.window_start_us = window_start;
    }
    ++current.requests;
    for (std::uint32_t i = 0; i < r.pages; ++i) seen.insert(r.page + i);
  }
  current.distinct_pages = seen.size();
  out.push_back(current);
  return out;
}

}  // namespace kdd
