// Trace analysis: the locality metrics cache studies live on.
//
//  * Reuse (stack) distance histogram — the number of *distinct* pages
//    touched between consecutive accesses to the same page. An LRU cache of
//    C pages hits exactly the accesses with distance < C, so the CDF of this
//    histogram is the LRU hit-ratio curve — computed exactly in
//    O(N log N) with a Fenwick tree over access timestamps.
//  * Sequentiality — fraction of requests continuing the previous one.
//  * Working-set profile — distinct pages per fixed-duration window.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"

namespace kdd {

struct ReuseProfile {
  /// histogram[k] = number of accesses with stack distance in
  /// [2^k - 1, 2^(k+1) - 1) (bucket 0 = immediate re-reference).
  std::vector<std::uint64_t> distance_histogram;
  std::uint64_t cold_accesses = 0;   ///< first-ever touches (infinite distance)
  std::uint64_t total_accesses = 0;  ///< page-granular accesses

  /// Expected LRU hit ratio for a fully-associative cache of `pages` pages.
  double lru_hit_ratio(std::uint64_t pages) const;
};

/// Exact stack-distance analysis over every page-granular access.
/// `writes_only` restricts the stream to writes (useful for sizing the DEZ).
ReuseProfile compute_reuse_profile(const Trace& trace, bool writes_only = false);

struct SequentialityProfile {
  double sequential_fraction = 0.0;  ///< requests starting where the previous ended
  double mean_request_pages = 0.0;
};

SequentialityProfile compute_sequentiality(const Trace& trace);

struct WorkingSetPoint {
  SimTime window_start_us = 0;
  std::uint64_t distinct_pages = 0;
  std::uint64_t requests = 0;
};

/// Distinct pages touched in each `window_us` slice of the trace.
std::vector<WorkingSetPoint> compute_working_set_profile(const Trace& trace,
                                                         SimTime window_us);

}  // namespace kdd
