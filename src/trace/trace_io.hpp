// Trace file readers/writers.
//
// Two on-disk formats are supported so that users with access to the original
// trace sets can feed them in directly:
//  * SPC format (the UMass/Storage Performance Council financial traces):
//    "ASU,LBA,Size,Opcode,Timestamp" — LBA in 512 B sectors, size in bytes,
//    opcode r/R/w/W, timestamp in seconds.
//  * MSR-Cambridge format: "Timestamp,Hostname,DiskNumber,Type,Offset,Size,
//    ResponseTime" — timestamp in 100 ns Windows ticks, offset/size in bytes.
// Both are converted to 4 KiB-page TraceRecords.
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace kdd {

/// Parses SPC-format CSV. Throws std::runtime_error on unreadable files;
/// skips malformed lines.
Trace read_spc_trace(const std::string& path, const std::string& name);

/// Parses MSR-Cambridge-format CSV.
Trace read_msr_trace(const std::string& path, const std::string& name);

/// Writes the canonical format: "time_us,page,pages,R|W" per line.
void write_canonical_trace(const Trace& trace, const std::string& path);

/// Reads the canonical format written by write_canonical_trace.
Trace read_canonical_trace(const std::string& path, const std::string& name);

}  // namespace kdd
