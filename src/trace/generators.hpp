// Synthetic workload generators calibrated to the paper's Table I.
//
// The original evaluation uses the SPC financial traces (Fin1/Fin2) and the
// MSR-Cambridge volumes Hm0/Web0, none of which can be redistributed here.
// These generators reproduce the characteristics the figures depend on:
//  * unique pages touched (total / by reads / by writes) and their overlap,
//  * read and write request counts (hence read ratio),
//  * popularity skew (so hit ratios respond to cache size like the paper's),
//  * spatial locality (multi-page requests, sequential runs),
//  * arrival pattern over a nominal duration for open-loop replay.
// Table I figures are matched to within a few percent; `scale` shrinks both
// request counts and footprints proportionally for faster experiments.
#pragma once

#include <cstdint>
#include <string>

#include "common/units.hpp"
#include "trace/trace.hpp"

namespace kdd {

struct SyntheticTraceConfig {
  std::string name;
  std::uint64_t read_unique_pages = 0;   ///< pages touched by >= 1 read
  std::uint64_t write_unique_pages = 0;  ///< pages touched by >= 1 write
  std::uint64_t shared_unique_pages = 0; ///< pages touched by both
  std::uint64_t read_requests = 0;
  std::uint64_t write_requests = 0;
  double zipf_alpha_read = 0.9;   ///< popularity skew of the read stream
  double zipf_alpha_write = 0.9;  ///< popularity skew of the write stream
  double sequential_prob = 0.1;  ///< chance a request continues the previous one
  double multi_page_prob = 0.3;  ///< chance of a 2..8-page request
  SimTime duration_us = 12ull * 3600 * kUsPerSec;
  std::uint64_t seed = 42;

  std::uint64_t unique_total() const {
    return read_unique_pages + write_unique_pages - shared_unique_pages;
  }
};

/// Generates a trace matching `config`, time-sorted.
Trace generate_synthetic_trace(const SyntheticTraceConfig& config);

/// Presets calibrated to Table I. `scale` in (0, 1] scales request counts and
/// unique-page footprints together (1.0 = full paper size).
SyntheticTraceConfig fin1_config(double scale = 1.0);  ///< OLTP, write-dominant
SyntheticTraceConfig fin2_config(double scale = 1.0);  ///< OLTP, read-dominant
SyntheticTraceConfig hm0_config(double scale = 1.0);   ///< MCS hm/0, write-dominant
SyntheticTraceConfig web0_config(double scale = 1.0);  ///< MCS web/0, read-dominant,
                                                       ///< write set much hotter than read set

/// Convenience: generate one of the four presets by name ("Fin1", ...).
Trace generate_preset(const std::string& name, double scale, std::uint64_t seed = 42);

}  // namespace kdd
