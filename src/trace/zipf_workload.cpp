#include "trace/zipf_workload.hpp"

#include <numeric>

#include "common/check.hpp"

namespace kdd {

ZipfWorkload::ZipfWorkload(const ZipfWorkloadConfig& config)
    : config_(config),
      rng_(config.seed),
      zipf_(config.working_set_pages, config.alpha) {
  KDD_CHECK(config_.working_set_pages > 0);
  scatter_m_ = config_.array_pages ? config_.array_pages : config_.working_set_pages;
  KDD_CHECK(scatter_m_ >= config_.working_set_pages);
  // Affine scatter of the working set across the array keeps Zipf-hot pages
  // from clustering at low disk addresses.
  scatter_a_ = rng_.next_below(scatter_m_) | 1;
  while (std::gcd(scatter_a_, scatter_m_) != 1) {
    scatter_a_ = (scatter_a_ + 2) % scatter_m_ | 1;
  }
  if (scatter_a_ == 0) scatter_a_ = 1;
}

TraceRecord ZipfWorkload::next() {
  KDD_CHECK(!done());
  ++issued_;
  TraceRecord r;
  const std::uint64_t rank = zipf_.sample(rng_);
  r.page = static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(scatter_a_) * rank) % scatter_m_);
  r.pages = 1;
  r.is_read = rng_.next_bool(config_.read_rate);
  return r;
}

Trace generate_zipf_trace(const ZipfWorkloadConfig& config) {
  ZipfWorkload w(config);
  Trace t;
  t.name = "zipf";
  t.records.reserve(config.total_requests);
  while (!w.done()) t.records.push_back(w.next());
  return t;
}

}  // namespace kdd
