#include "trace/trace.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace kdd {

TraceStats compute_stats(const Trace& trace) {
  TraceStats s;
  // 2-bit state per page: bit0 = read, bit1 = written.
  std::unordered_map<Lba, std::uint8_t> touched;
  touched.reserve(trace.records.size() / 4 + 16);
  for (const TraceRecord& r : trace.records) {
    if (r.is_read) {
      ++s.read_requests;
    } else {
      ++s.write_requests;
    }
    for (std::uint32_t i = 0; i < r.pages; ++i) {
      const Lba p = r.page + i;
      s.max_page = std::max(s.max_page, p);
      touched[p] |= r.is_read ? 1 : 2;
    }
  }
  s.unique_pages_total = touched.size();
  for (const auto& [page, bits] : touched) {
    (void)page;
    if (bits & 1) ++s.unique_pages_read;
    if (bits & 2) ++s.unique_pages_written;
  }
  return s;
}

void rescale_duration(Trace& trace, SimTime target_duration_us) {
  if (trace.records.empty()) return;
  const SimTime t0 = trace.records.front().time_us;
  const SimTime span = trace.records.back().time_us - t0;
  if (span == 0) {
    // Degenerate: spread requests evenly.
    const double step = static_cast<double>(target_duration_us) /
                        static_cast<double>(trace.records.size());
    for (std::size_t i = 0; i < trace.records.size(); ++i) {
      trace.records[i].time_us = static_cast<SimTime>(step * static_cast<double>(i));
    }
    return;
  }
  for (TraceRecord& r : trace.records) {
    const double frac =
        static_cast<double>(r.time_us - t0) / static_cast<double>(span);
    r.time_us = static_cast<SimTime>(frac * static_cast<double>(target_duration_us));
  }
}

}  // namespace kdd
