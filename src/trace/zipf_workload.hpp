// Closed-loop synthetic workload equivalent to the paper's FIO benchmark run
// (Section IV-B3): Zipf-distributed 4 KiB accesses with alpha = 1.0001 over a
// 1.6 GiB working set, a configurable read rate, and a fixed total volume
// (4 GiB, i.e. one million requests). Requests are produced on demand — the
// closed-loop driver issues the next one as soon as a worker completes.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "trace/trace.hpp"

namespace kdd {

struct ZipfWorkloadConfig {
  double alpha = 1.0001;
  std::uint64_t working_set_pages = 409600;  ///< 1.6 GiB at 4 KiB
  std::uint64_t total_requests = 1048576;    ///< 4 GiB of 4 KiB requests
  double read_rate = 0.0;                    ///< fraction of requests that read
  std::uint64_t array_pages = 0;  ///< footprint is scattered over [0, array_pages);
                                  ///< 0 = use working_set_pages (dense)
  std::uint64_t seed = 7;
};

class ZipfWorkload {
 public:
  explicit ZipfWorkload(const ZipfWorkloadConfig& config);

  bool done() const { return issued_ >= config_.total_requests; }
  std::uint64_t issued() const { return issued_; }

  /// Produces the next request (single page). Timestamps are not meaningful
  /// in closed-loop mode and are left zero.
  TraceRecord next();

  const ZipfWorkloadConfig& config() const { return config_; }

 private:
  ZipfWorkloadConfig config_;
  Rng rng_;
  ZipfSampler zipf_;
  std::uint64_t scatter_a_;
  std::uint64_t scatter_m_;
  std::uint64_t issued_ = 0;
};

/// Materialises the whole workload as a Trace (for counter-mode simulation).
Trace generate_zipf_trace(const ZipfWorkloadConfig& config);

}  // namespace kdd
