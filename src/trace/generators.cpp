#include "trace/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace kdd {

namespace {

/// Affine bijection over [0, m): x -> (a*x + b) mod m with gcd(a, m) == 1.
/// Scatters Zipf ranks across the region so hot pages are not clustered.
class AffinePermutation {
 public:
  AffinePermutation(std::uint64_t m, std::uint64_t seed) : m_(m) {
    KDD_CHECK(m_ > 0);
    Rng rng(seed);
    b_ = rng.next_below(m_);
    a_ = rng.next_below(m_) | 1;  // odd helps, but verify coprimality anyway
    while (std::gcd(a_, m_) != 1) a_ = (a_ + 2) % m_ | 1;
    if (a_ == 0) a_ = 1;
  }

  std::uint64_t operator()(std::uint64_t x) const {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(a_) * x + b_) % m_);
  }

 private:
  std::uint64_t m_;
  std::uint64_t a_ = 1;
  std::uint64_t b_ = 0;
};

/// One direction (read or write) of the generator: guarantees every page of
/// its region is touched at least once (a sequential "coverage" sub-stream,
/// which also provides spatial locality) and draws the remaining requests
/// from a scattered Zipf distribution. Unique page counts therefore match
/// the configured region sizes *exactly*.
class StreamState {
 public:
  /// `shared_pages` is the size of the region this stream shares with its
  /// sibling (reads/writes of the same blocks). The hottest `shared_pages`
  /// Zipf ranks of BOTH streams map into that region through the SAME
  /// permutation (seeded by `shared_seed`), so hot read pages and hot write
  /// pages coincide — the content-locality structure real OLTP traces have
  /// and the mechanism behind the paper's Fig. 7/8 crossovers.
  StreamState(std::uint64_t region_pages, std::uint64_t shared_pages,
              std::uint64_t requests, double alpha, std::uint64_t seed,
              std::uint64_t shared_seed)
      : region_(region_pages),
        shared_(shared_pages),
        requests_left_(requests),
        zipf_(std::max<std::uint64_t>(region_pages, 1), alpha),
        perm_shared_(std::max<std::uint64_t>(shared_pages, 1),
                     shared_seed ^ 0x5eed5eedull),
        perm_private_(std::max<std::uint64_t>(region_pages - shared_pages, 1),
                      seed ^ 0xabcdef12345ull) {
    KDD_CHECK(shared_pages <= region_pages);
    KDD_CHECK(requests >= coverage_requests_needed());
  }

  std::uint64_t requests_left() const { return requests_left_; }

  /// True if one request of budget can be spent without endangering the
  /// coverage guarantee (used by sequential continuations, which bypass the
  /// coverage/Zipf draw).
  bool can_skip_draw() const { return requests_left_ > coverage_requests_needed(); }
  void consume_budget() {
    KDD_CHECK(can_skip_draw());
    --requests_left_;
  }

  /// Emits the next request for this stream: region-relative page + length.
  /// `max_len` limits multi-page requests.
  std::pair<std::uint64_t, std::uint32_t> next(Rng& rng, bool want_multi) {
    KDD_CHECK(requests_left_ > 0);
    --requests_left_;
    // Interleave coverage with Zipf traffic in proportion to what remains,
    // so cold pages keep arriving throughout the trace.
    const std::uint64_t cov_left = coverage_requests_needed();
    const bool do_coverage =
        cov_left > 0 &&
        (cov_left >= requests_left_ + 1 ||
         rng.next_double() <
             static_cast<double>(cov_left) / static_cast<double>(requests_left_ + 1));
    if (do_coverage) {
      const std::uint64_t start = coverage_pos_;
      const std::uint32_t len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(kCoverageRun, region_ - coverage_pos_));
      coverage_pos_ += len;
      return {start, len};
    }
    std::uint32_t len = 1;
    if (want_multi) len = 1u << rng.next_below(4);  // 1,2,4,8 pages
    const std::uint64_t rank = zipf_.sample(rng);
    // Hottest ranks live in the shared region (common permutation); colder
    // ranks scatter over the stream-private remainder.
    std::uint64_t page = rank < shared_
                             ? perm_shared_(rank)
                             : shared_ + perm_private_(rank - shared_);
    if (page + len > region_) page = region_ - len;
    return {page, len};
  }

 private:
  static constexpr std::uint64_t kCoverageRun = 8;

  std::uint64_t coverage_requests_needed() const {
    const std::uint64_t remaining = region_ - coverage_pos_;
    return (remaining + kCoverageRun - 1) / kCoverageRun;
  }

  std::uint64_t region_;
  std::uint64_t shared_;
  std::uint64_t requests_left_;
  std::uint64_t coverage_pos_ = 0;
  ZipfSampler zipf_;
  AffinePermutation perm_shared_;
  AffinePermutation perm_private_;
};

}  // namespace

Trace generate_synthetic_trace(const SyntheticTraceConfig& config) {
  KDD_CHECK(config.shared_unique_pages <= config.read_unique_pages);
  KDD_CHECK(config.shared_unique_pages <= config.write_unique_pages);
  KDD_CHECK(config.read_requests > 0 || config.write_requests > 0);

  Rng rng(config.seed);
  // Physical address layout: [shared | read-only | write-only].
  // Read stream region  = [0, read_unique), identity-mapped.
  // Write stream region = [0, write_unique) with the non-shared part shifted
  // past the read-only range.
  const std::uint64_t shared = config.shared_unique_pages;
  const std::uint64_t read_only = config.read_unique_pages - shared;
  const std::uint64_t write_shift = read_only;  // applied to write pages >= shared

  StreamState reads(config.read_unique_pages, shared, config.read_requests,
                    config.zipf_alpha_read, config.seed * 2 + 1, config.seed);
  StreamState writes(config.write_unique_pages, shared, config.write_requests,
                     config.zipf_alpha_write, config.seed * 2 + 2, config.seed);

  Trace trace;
  trace.name = config.name;
  trace.records.reserve(config.read_requests + config.write_requests);

  const std::uint64_t total = config.read_requests + config.write_requests;
  const double mean_gap =
      static_cast<double>(config.duration_us) / static_cast<double>(total);
  double now = 0.0;

  std::uint64_t prev_end = kInvalidLba;
  bool prev_is_read = true;

  for (std::uint64_t i = 0; i < total; ++i) {
    const std::uint64_t r_left = reads.requests_left();
    const std::uint64_t w_left = writes.requests_left();
    const bool is_read =
        w_left == 0 ||
        (r_left > 0 && rng.next_double() < static_cast<double>(r_left) /
                                               static_cast<double>(r_left + w_left));

    TraceRecord rec;
    rec.is_read = is_read;
    const bool want_multi = rng.next_double() < config.multi_page_prob;

    // Sequential continuation keeps the previous run going (same direction,
    // still inside the stream's region).
    const std::uint64_t region =
        is_read ? config.read_unique_pages : config.write_unique_pages;
    StreamState& stream = is_read ? reads : writes;
    if (prev_end != kInvalidLba && prev_is_read == is_read &&
        prev_end + 8 <= region && stream.can_skip_draw() &&
        rng.next_double() < config.sequential_prob) {
      rec.pages = want_multi ? (1u << rng.next_below(4)) : 1;
      // prev_end is region-relative for this stream (see below).
      const std::uint64_t rel = prev_end;
      prev_end = rel + rec.pages;
      rec.page = rel;
      stream.consume_budget();
    } else {
      auto [rel, len] = stream.next(rng, want_multi);
      rec.page = rel;
      rec.pages = len;
      prev_end = rel + len;
    }
    prev_is_read = is_read;

    // Map region-relative to physical.
    if (!is_read && rec.page >= shared) rec.page += write_shift;

    // Poisson arrivals with occasional bursts.
    const double u = rng.next_double();
    double gap = -mean_gap * std::log(u <= 1e-12 ? 1e-12 : u);
    if (rng.next_double() < 0.15) gap *= 0.05;  // burst
    now += gap;
    rec.time_us = static_cast<SimTime>(now);
    trace.records.push_back(rec);
  }
  return trace;
}

namespace {

std::uint64_t scaled(double v, double scale) {
  return static_cast<std::uint64_t>(v * scale + 0.5);
}

}  // namespace

SyntheticTraceConfig fin1_config(double scale) {
  SyntheticTraceConfig c;
  c.name = "Fin1";
  c.read_unique_pages = scaled(331e3, scale);
  c.write_unique_pages = scaled(966e3, scale);
  c.shared_unique_pages = scaled(304e3, scale);  // 331 + 966 - 993 total
  c.read_requests = scaled(1339e3, scale);
  c.write_requests = scaled(5628e3, scale);
  c.zipf_alpha_read = 1.15;
  c.zipf_alpha_write = 1.2;
  c.sequential_prob = 0.05;
  c.multi_page_prob = 0.15;
  c.duration_us = 12ull * 3600 * kUsPerSec;
  return c;
}

SyntheticTraceConfig fin2_config(double scale) {
  SyntheticTraceConfig c;
  c.name = "Fin2";
  c.read_unique_pages = scaled(271e3, scale);
  c.write_unique_pages = scaled(212e3, scale);
  c.shared_unique_pages = scaled(78e3, scale);  // 271 + 212 - 405 total
  c.read_requests = scaled(3562e3, scale);
  c.write_requests = scaled(917e3, scale);
  c.zipf_alpha_read = 1.15;
  c.zipf_alpha_write = 1.2;
  c.sequential_prob = 0.05;
  c.multi_page_prob = 0.15;
  c.duration_us = 12ull * 3600 * kUsPerSec;
  return c;
}

SyntheticTraceConfig hm0_config(double scale) {
  SyntheticTraceConfig c;
  c.name = "Hm0";
  c.read_unique_pages = scaled(488e3, scale);
  c.write_unique_pages = scaled(428e3, scale);
  c.shared_unique_pages = scaled(307e3, scale);  // 488 + 428 - 609 total
  c.read_requests = scaled(2880e3, scale);
  c.write_requests = scaled(5992e3, scale);
  c.zipf_alpha_read = 0.95;
  c.zipf_alpha_write = 1.15;
  c.sequential_prob = 0.15;
  c.multi_page_prob = 0.35;
  c.duration_us = 24ull * 3600 * kUsPerSec;
  return c;
}

SyntheticTraceConfig web0_config(double scale) {
  SyntheticTraceConfig c;
  c.name = "Web0";
  c.read_unique_pages = scaled(1884e3, scale);
  c.write_unique_pages = scaled(182e3, scale);
  c.shared_unique_pages = scaled(153e3, scale);  // 1884 + 182 - 1913 total
  c.read_requests = scaled(4575e3, scale);
  c.write_requests = scaled(3186e3, scale);
  // The paper's Fig. 7 discussion: Web0's write stream has much higher
  // temporal locality than its read stream (3.2 M writes over 182 K pages
  // vs 4.6 M reads over 1.9 M pages).
  c.zipf_alpha_read = 0.55;
  c.zipf_alpha_write = 1.3;
  c.sequential_prob = 0.2;
  c.multi_page_prob = 0.35;
  c.duration_us = 24ull * 3600 * kUsPerSec;
  return c;
}

Trace generate_preset(const std::string& name, double scale, std::uint64_t seed) {
  SyntheticTraceConfig c;
  if (name == "Fin1") {
    c = fin1_config(scale);
  } else if (name == "Fin2") {
    c = fin2_config(scale);
  } else if (name == "Hm0") {
    c = hm0_config(scale);
  } else if (name == "Web0") {
    c = web0_config(scale);
  } else {
    throw std::invalid_argument("unknown trace preset: " + name);
  }
  c.seed = seed;
  return generate_synthetic_trace(c);
}

}  // namespace kdd
