// Lifetime explorer: how long does the SSD cache survive under each policy?
//
// Runs a day's worth of a write-heavy OLTP-like workload through each policy
// with the cache backed by a *real* flash model (FTL, GC, erase counters)
// and projects device lifetime from the measured endurance consumption —
// the paper's headline motivation ("typical data-center workloads can wear
// out an MLC SSD cache within months") made concrete.
//
// Usage: lifetime_explorer [locality%]   (default 25)
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "blockdev/ssd_model.hpp"
#include "common/table.hpp"
#include "compress/content.hpp"
#include "harness/harness.hpp"
#include "trace/zipf_workload.hpp"

int main(int argc, char** argv) {
  using namespace kdd;
  const double locality = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.25;

  // One simulated "day": 2 GiB of 4 KiB requests, 25 % reads, Zipfian.
  ZipfWorkloadConfig wcfg;
  wcfg.working_set_pages = 65536;  // 256 MiB working set
  wcfg.total_requests = 524288;    // 2 GiB transferred per day
  wcfg.read_rate = 0.25;
  const RaidGeometry geo = paper_geometry(wcfg.working_set_pages * 2);
  wcfg.array_pages = geo.data_pages();

  std::printf("SSD cache lifetime projection (real FTL, MLC 3000 P/E)\n");
  std::printf("one day = %s transferred, %.0f%% content locality\n\n",
              format_bytes(wcfg.total_requests * kPageSize).c_str(),
              locality * 100);

  TextTable table({"Policy", "Host writes/day", "NAND writes/day", "WA",
                   "Endurance/day", "Projected lifetime"});
  double kdd_days = 0, wt_days = 0;
  for (const PolicyKind kind :
       {PolicyKind::kWT, PolicyKind::kWA, PolicyKind::kLeavO, PolicyKind::kKdd}) {
    RaidArray array(geo);
    SsdConfig scfg;
    scfg.logical_pages = 16384;  // 64 MiB cache
    SsdModel ssd(scfg);
    PolicyConfig cfg;
    cfg.ssd_pages = scfg.logical_pages;
    cfg.delta_ratio_mean = locality;
    auto policy = make_policy(kind, cfg, &array, &ssd);

    // Real content with the requested locality.
    const ContentGenerator gen(5);
    Rng rng(6);
    std::unordered_map<Lba, Page> current;
    ZipfWorkload workload(wcfg);
    Page buf = make_page();
    while (!workload.done()) {
      const TraceRecord r = workload.next();
      if (r.is_read) {
        policy->read(r.page, buf, nullptr);
      } else {
        auto it = current.find(r.page);
        Page next = it == current.end() ? gen.base_page(r.page)
                                        : gen.mutate(it->second, locality, rng);
        policy->write(r.page, next, nullptr);
        current[r.page] = std::move(next);
      }
    }
    policy->flush(nullptr);

    const SsdWearStats wear = ssd.wear();
    const double per_day = ssd.endurance_consumed();
    const double days = per_day > 0 ? 1.0 / per_day : 1e9;
    if (kind == PolicyKind::kKdd) kdd_days = days;
    if (kind == PolicyKind::kWT) wt_days = days;
    char lifetime[64];
    std::snprintf(lifetime, sizeof lifetime, "%.1f months", days / 30.4);
    table.add_row({policy_kind_name(kind),
                   format_bytes(wear.host_page_writes * kPageSize),
                   format_bytes(wear.nand_page_writes * kPageSize),
                   TextTable::num(wear.write_amplification(), 2),
                   format_pct(per_day), lifetime});
  }
  table.print();
  std::printf("\nKDD extends cache lifetime %.1fx over write-through at this locality.\n",
              kdd_days / wt_days);
  return 0;
}
