// trace_convert: convert real block traces into the canonical format the
// tools consume (and print their Table I-style characteristics).
//
// Usage:
//   trace_convert spc <in.csv> <out.trace>     SPC / UMass financial format
//   trace_convert msr <in.csv> <out.trace>     MSR-Cambridge format
//   trace_convert stat <canonical.trace>       just print characteristics
#include <cstdio>
#include <cstring>
#include <string>

#include "trace/analysis.hpp"
#include "trace/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace kdd;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: trace_convert spc|msr <in.csv> <out.trace>\n"
                 "       trace_convert stat <canonical.trace>\n");
    return 2;
  }
  const std::string mode = argv[1];
  Trace trace;
  try {
    if (mode == "spc") {
      trace = read_spc_trace(argv[2], argv[2]);
    } else if (mode == "msr") {
      trace = read_msr_trace(argv[2], argv[2]);
    } else if (mode == "stat") {
      trace = read_canonical_trace(argv[2], argv[2]);
    } else {
      std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
      return 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  if (trace.records.empty()) {
    std::fprintf(stderr, "no records parsed from %s\n", argv[2]);
    return 1;
  }

  const TraceStats s = compute_stats(trace);
  const SequentialityProfile seq = compute_sequentiality(trace);
  std::printf("records:        %zu (reads %llu, writes %llu, read ratio %.2f)\n",
              trace.records.size(),
              static_cast<unsigned long long>(s.read_requests),
              static_cast<unsigned long long>(s.write_requests), s.read_ratio());
  std::printf("unique pages:   %llu total (%llu read, %llu written)\n",
              static_cast<unsigned long long>(s.unique_pages_total),
              static_cast<unsigned long long>(s.unique_pages_read),
              static_cast<unsigned long long>(s.unique_pages_written));
  std::printf("footprint:      pages up to %llu (%.1f GiB)\n",
              static_cast<unsigned long long>(s.max_page),
              static_cast<double>(s.max_page) * kPageSize / static_cast<double>(kGiB));
  std::printf("duration:       %.1f minutes, sequential fraction %.1f%%\n",
              static_cast<double>(trace.duration_us()) / 60e6,
              seq.sequential_fraction * 100);

  if (mode != "stat") {
    if (argc < 4) {
      std::fprintf(stderr, "missing output path\n");
      return 2;
    }
    write_canonical_trace(trace, argv[3]);
    std::printf("wrote canonical trace to %s\n", argv[3]);
  }
  return 0;
}
