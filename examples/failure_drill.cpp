// Failure drill: the three recovery scenarios of Section III-E, end to end
// with real data — plus a demonstration of the vulnerability window KDD
// closes (rebuilding from stale parity corrupts data).
//
//   1. Power failure: the in-memory primary map is lost; the cache rebuilds
//      itself from the on-SSD circular metadata log + NVRAM buffers.
//   2. SSD (cache device) failure: the array resynchronises by
//      reconstruct-write; no data is lost (RPO = 0).
//   3. HDD failure: KDD flushes all stale parity through the parity_update
//      interface, then rebuilds the disk — zero groups rebuilt from stale
//      parity.
//   4. Latent sector errors: two unreadable pages on two different disks in
//      two different stripes self-heal through read-error repair (parity
//      reconstruction + write-back); the fault counters show the healing
//      path actually ran.
#include <cstdio>

#include "blockdev/ssd_model.hpp"
#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"

namespace {

using namespace kdd;

RaidGeometry geo() {
  RaidGeometry g;
  g.level = RaidLevel::kRaid5;
  g.num_disks = 5;
  g.chunk_pages = 16;
  g.disk_pages = 4096;
  return g;
}

SsdConfig ssd_cfg() {
  SsdConfig c;
  c.logical_pages = 2048;
  return c;
}

PolicyConfig cache_cfg() {
  PolicyConfig c;
  c.ssd_pages = 2048;
  return c;
}

struct Rig {
  Rig() : array(geo()), ssd(ssd_cfg()), nvram(kPageSize, 255) {
    kdd = std::make_unique<KddCache>(cache_cfg(), &array, &ssd, &nvram);
  }

  void workload(std::uint64_t seed, int iters) {
    const ContentGenerator gen(3);
    Rng rng(seed);
    for (int i = 0; i < iters; ++i) {
      const Lba lba = rng.next_below(800);
      auto it = truth.find(lba);
      Page next = it == truth.end() ? gen.base_page(lba)
                                    : gen.mutate(it->second, 0.2, rng);
      kdd->write(lba, next);
      truth[lba] = std::move(next);
    }
  }

  bool verify() {
    Page buf = make_page();
    for (const auto& [lba, page] : truth) {
      if (kdd->read(lba, buf) != IoStatus::kOk || buf != page) return false;
    }
    return true;
  }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  std::unique_ptr<KddCache> kdd;
  std::unordered_map<Lba, Page> truth;
};

}  // namespace

int main() {
  std::printf("--- 0. the vulnerability window KDD closes ---\n");
  {
    RaidArray array(geo());
    const ContentGenerator gen(1);
    const Page v0 = gen.base_page(0);
    Rng rng(2);
    const Page v1 = gen.mutate(v0, 0.2, rng);
    array.write_page(7, v0);
    array.write_page_nopar(7, v1);  // deferred parity, as LeavO/KDD do
    const std::uint32_t disk = array.layout().map(7).disk;
    array.fail_disk(disk);
    const std::uint64_t bad = array.rebuild_disk(disk);  // no flush first!
    Page buf = make_page();
    array.read_page(7, buf);
    std::printf("rebuild without flushing parity: %llu group(s) rebuilt from stale "
                "parity, data %s\n\n",
                static_cast<unsigned long long>(bad),
                buf == v1 ? "intact (unexpected)" : "CORRUPTED (expected)");
  }

  std::printf("--- 1. power failure ---\n");
  {
    Rig rig;
    rig.workload(11, 4000);
    const auto stale = rig.kdd->stale_groups();
    std::printf("crash with %llu stale parity groups, %llu staged deltas...\n",
                static_cast<unsigned long long>(stale),
                static_cast<unsigned long long>(rig.kdd->staged_deltas()));
    // The KddCache object (and with it the DRAM primary map) dies; the SSD,
    // the disks and the NVRAM buffers survive.
    rig.kdd = std::make_unique<KddCache>(cache_cfg(), &rig.array, &rig.ssd,
                                         &rig.nvram, /*recover=*/true);
    std::printf("recovered: %llu stale groups, data %s\n",
                static_cast<unsigned long long>(rig.kdd->stale_groups()),
                rig.verify() ? "intact" : "LOST");
    rig.kdd->flush();
    std::printf("after flush: scrub %s\n\n",
                rig.array.scrub().empty() ? "CLEAN" : "INCONSISTENT");
  }

  std::printf("--- 2. SSD (cache device) failure ---\n");
  {
    Rig rig;
    rig.workload(21, 4000);
    const std::uint64_t resynced = rig.kdd->handle_ssd_failure();
    std::printf("SSD died; resynchronised %llu stale groups by reconstruct-write\n",
                static_cast<unsigned long long>(resynced));
    std::printf("scrub %s, data %s (served from RAID, cache cold)\n\n",
                rig.array.scrub().empty() ? "CLEAN" : "INCONSISTENT",
                rig.verify() ? "intact" : "LOST");
  }

  std::printf("--- 3. HDD failure ---\n");
  {
    Rig rig;
    rig.workload(31, 4000);
    const std::uint64_t stale_rebuilds = rig.kdd->handle_disk_failure(2);
    std::printf("disk 2 died; parity flushed first, then rebuilt: %llu groups from "
                "stale parity\n",
                static_cast<unsigned long long>(stale_rebuilds));
    std::printf("scrub %s, data %s\n\n",
                rig.array.scrub().empty() ? "CLEAN" : "INCONSISTENT",
                rig.verify() ? "intact" : "LOST");
  }

  std::printf("--- 4. latent sector errors self-heal on read ---\n");
  {
    Rig rig;
    rig.workload(41, 4000);
    // Parity must be fresh before it can vouch for reconstruction — a stale
    // group fails cleanly instead of fabricating contents (the same reason
    // drill 0 corrupts). Flush the deferred updates first.
    rig.kdd->flush();
    // Two latent sector errors on two *different disks*, in two *different
    // stripes* — each is a single-fault in its stripe, so parity can rebuild
    // both independently.
    const Lba victims[2] = {40, 700};
    for (const Lba v : victims) {
      const DiskAddr a = rig.array.layout().map(v);
      rig.array.faults(a.disk).inject_media_error(a.page);
      std::printf("planted latent sector error: lba %llu -> disk %u page %llu\n",
                  static_cast<unsigned long long>(v), a.disk,
                  static_cast<unsigned long long>(a.page));
    }
    // A read of the bad page reconstructs it from its stripe peers and writes
    // the result back — healing the medium in place. (Reads served from the
    // cache never notice; the heal happens on the first read that reaches
    // the RAID.)
    Page buf = make_page();
    for (const Lba v : victims) {
      const IoStatus st = rig.array.read_page(v, buf);
      std::printf("direct read of lba %llu: %s\n",
                  static_cast<unsigned long long>(v),
                  st == IoStatus::kOk ? "ok (reconstructed from parity)" : "FAILED");
    }
    std::printf("read-error repairs (reconstruct + write-back): %llu\n",
                static_cast<unsigned long long>(rig.array.read_repairs()));
    for (const Lba v : victims) {
      const DiskAddr a = rig.array.layout().map(v);
      const FaultCounters& fc = rig.array.faults(a.disk).fault_counters();
      std::printf(
          "  disk %u counters: media_error_reads=%llu healed=%llu pending=%llu\n",
          a.disk, static_cast<unsigned long long>(fc.media_error_reads),
          static_cast<unsigned long long>(fc.media_errors_healed),
          static_cast<unsigned long long>(rig.array.faults(a.disk).pending_media_errors()));
    }
    rig.kdd->flush();
    std::printf("data %s, scrub %s\n", rig.verify() ? "intact" : "LOST",
                rig.array.scrub().empty() ? "CLEAN" : "INCONSISTENT");
  }
  return 0;
}
