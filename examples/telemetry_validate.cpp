// telemetry_validate: schema + consistency checker for the artifact
// directory a TelemetrySession writes (see docs/observability.md):
//
//   metrics.prom      Prometheus text exposition v0.0.4
//   snapshot.json     kdd-telemetry-snapshot-v1 (one JSON object, one line)
//   timeseries.jsonl  kdd-telemetry-timeseries-v1 (header + bucket lines)
//   trace.json        Chrome trace_event JSON of the span ring
//   health.json       kdd-health-v1 (SLO windows + alert table)
//   flight.json       kdd-flight-v1 (flight-recorder ring dump)
//   scrape_*.{prom,json}  optional: bytes served by the live scrape surface
//
// Checks, per artifact:
//  * metrics.prom — every non-comment line is `name[{labels}] value`, each
//    family has exactly one `# TYPE` line and a `# HELP` line, and the
//    span-stage aggregate families are present.
//  * health.json — schema tag, fast + slow windows with attainment numbers,
//    and one alert entry per known rule.
//  * flight.json — schema tag, strictly increasing `seq`, non-decreasing
//    `t_us` (the ring is dumped in chronological order).
//  * snapshot.json — single line, carries the schema tag.
//  * timeseries.jsonl — header carries the schema tag + write_kinds; every
//    bucket line carries t/ops, one ssd_writes_<kind> field per declared
//    kind, and the wear gauges (dez_pages, stale_groups, ...); `t` is
//    non-decreasing and at least one bucket completed requests.
//  * trace.json — parses the complete ("X") events; for every request id
//    whose root span survived in the ring, the nested stage spans must lie
//    inside the root's [start, end] window and the union of their
//    intervals must not exceed the root duration (the reconciliation
//    property: per-stage time explains, and never exceeds, end-to-end
//    time; stage spans nest, so the union — not the plain sum — is the
//    bounded quantity). A small epsilon absorbs the microsecond rounding
//    of the Chrome format.
//
// Exit status: 0 when every check passes, 1 otherwise — CI's obs-smoke job
// runs this against a fig9 --telemetry run.
#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

int g_failures = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "FAIL: %s\n", what.c_str());
  ++g_failures;
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::vector<std::string> split_lines(const std::string& body) {
  std::vector<std::string> lines;
  std::string cur;
  for (const char c : body) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Extracts `"key":<number>` from a JSON-ish line. Returns false if absent.
bool json_number(const std::string& line, const std::string& key, double* out) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  *out = std::strtod(line.c_str() + pos + needle.size(), nullptr);
  return true;
}

// ---------------------------------------------------------------------------
// metrics.prom
// ---------------------------------------------------------------------------

void validate_prometheus_file(const std::string& dir, const std::string& file,
                              bool require_span_families) {
  std::string body;
  if (!read_file(dir + "/" + file, &body)) {
    fail(file + ": cannot read");
    return;
  }
  check(!body.empty() && body.back() == '\n',
        file + ": must end with a newline");

  std::set<std::string> type_families;   // families with a # TYPE line
  std::set<std::string> help_families;   // families with a # HELP line
  std::set<std::string> value_families;  // families with at least one sample
  for (const std::string& line : split_lines(body)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream ss(line.substr(7));
      std::string family, kind;
      ss >> family >> kind;
      check(kind == "counter" || kind == "gauge" || kind == "summary",
            file + ": unknown TYPE kind '" + kind + "' for " + family);
      check(type_families.insert(family).second,
            file + ": duplicate TYPE line for " + family);
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      std::istringstream ss(line.substr(7));
      std::string family;
      ss >> family;
      check(help_families.insert(family).second,
            file + ": duplicate HELP line for " + family);
      continue;
    }
    if (line[0] == '#') continue;  // other comments are fine
    // Sample line: name[{labels}] value
    const std::size_t sp = line.rfind(' ');
    check(sp != std::string::npos && sp > 0 && sp + 1 < line.size(),
          file + ": malformed sample line: " + line);
    if (sp == std::string::npos) continue;
    const std::string name = line.substr(0, sp);
    const std::string value = line.substr(sp + 1);
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    check(end != nullptr && *end == '\0',
          file + ": non-numeric value in: " + line);
    const std::size_t brace = name.find('{');
    std::string family = brace == std::string::npos ? name : name.substr(0, brace);
    if (brace != std::string::npos) {
      check(name.back() == '}',
            file + ": unterminated label set in: " + line);
    }
    value_families.insert(family);
  }
  // Every sampled family must be typed. Summary families emit the family
  // TYPE but sample under _sum/_count/_max suffixes and quantile labels.
  for (const std::string& family : value_families) {
    bool typed = type_families.count(family) > 0;
    for (const char* suffix : {"_sum", "_count", "_max"}) {
      const std::size_t n = std::strlen(suffix);
      if (!typed && family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0) {
        typed = type_families.count(family.substr(0, family.size() - n)) > 0;
      }
    }
    check(typed, file + ": family without TYPE line: " + family);
  }
  // Every typed family carries a HELP line (emitted as a pair).
  for (const std::string& family : type_families) {
    check(help_families.count(family) > 0,
          file + ": family without HELP line: " + family);
  }
  if (require_span_families) {
    // The span aggregates PR 6 introduced must be present.
    for (const char* family : {"kdd_span_stage_ns_total",
                               "kdd_span_stage_count", "kdd_request_ns"}) {
      check(type_families.count(family) > 0,
            file + ": missing family " + family);
    }
    // The health engine's alert families must be present too.
    for (const char* family : {"kdd_alerts_active", "kdd_alerts_fired_total",
                               "kdd_slo_latency_burn"}) {
      check(type_families.count(family) > 0,
            file + ": missing family " + family);
    }
    // Segment staging: the instrumented replay runs with staging on, so
    // the seal/stage counters and the fill / write-amplification gauges
    // must flow through every Prometheus surface.
    for (const char* family :
         {"kdd_segment_seals_total", "kdd_segment_forced_seals_total",
          "kdd_segment_pages_sealed_total", "kdd_segment_pages_staged_total",
          "kdd_segment_pages_coalesced_total",
          "kdd_segment_fallback_page_writes_total",
          "kdd_segment_lost_pages_total", "kdd_segment_recovered_total",
          "kdd_segment_discarded_total", "kdd_segment_discarded_pages_total",
          "kdd_segment_fill_permille", "kdd_segment_write_ops_per_kilopage"}) {
      check(type_families.count(family) > 0,
            file + ": missing family " + family);
    }
    // Elastic delta zone: occupancy/fragmentation gauges plus the GC and
    // boundary counters (the behaviours are flag-gated, but the series are
    // always registered by KddCache).
    for (const char* family :
         {"kdd_dez_live_bytes", "kdd_dez_dead_bytes", "kdd_dez_boundary_pages",
          "kdd_dez_elastic_spare_pages", "kdd_dez_gc_passes_total",
          "kdd_dez_gc_pages_reclaimed_total",
          "kdd_dez_gc_deltas_relocated_total",
          "kdd_dez_boundary_moves_total"}) {
      check(type_families.count(family) > 0,
            file + ": missing family " + family);
    }
  }
  std::printf("%s: %zu typed families, %zu sampled families\n", file.c_str(),
              type_families.size(), value_families.size());
}

void validate_prometheus(const std::string& dir) {
  validate_prometheus_file(dir, "metrics.prom", /*require_span_families=*/true);
}

// ---------------------------------------------------------------------------
// snapshot.json
// ---------------------------------------------------------------------------

void validate_snapshot(const std::string& dir) {
  std::string body;
  if (!read_file(dir + "/snapshot.json", &body)) {
    fail("snapshot.json: cannot read");
    return;
  }
  check(body.find("kdd-telemetry-snapshot-v1") != std::string::npos,
        "snapshot.json: missing schema tag kdd-telemetry-snapshot-v1");
  const std::vector<std::string> lines = split_lines(body);
  std::size_t nonempty = 0;
  for (const std::string& l : lines) {
    if (!l.empty()) ++nonempty;
  }
  check(nonempty == 1, "snapshot.json: must be a single JSON line");
  check(!lines.empty() && lines[0].front() == '{' && lines[0].back() == '}',
        "snapshot.json: not a JSON object");
  check(body.find("\"counters\"") != std::string::npos &&
            body.find("\"gauges\"") != std::string::npos &&
            body.find("\"histograms\"") != std::string::npos,
        "snapshot.json: missing counters/gauges/histograms sections");
  std::printf("snapshot.json: ok (%zu bytes)\n", body.size());
}

// ---------------------------------------------------------------------------
// timeseries.jsonl
// ---------------------------------------------------------------------------

void validate_timeseries(const std::string& dir) {
  std::string body;
  if (!read_file(dir + "/timeseries.jsonl", &body)) {
    fail("timeseries.jsonl: cannot read");
    return;
  }
  const std::vector<std::string> lines = split_lines(body);
  if (lines.empty()) {
    fail("timeseries.jsonl: empty");
    return;
  }
  const std::string& header = lines[0];
  check(header.find("kdd-telemetry-timeseries-v1") != std::string::npos,
        "timeseries.jsonl: header missing schema tag");
  check(header.find("\"t_unit\"") != std::string::npos,
        "timeseries.jsonl: header missing t_unit");

  // Write kinds declared in the header become required bucket fields.
  std::vector<std::string> kinds;
  const std::size_t kpos = header.find("\"write_kinds\":[");
  check(kpos != std::string::npos, "timeseries.jsonl: header missing write_kinds");
  if (kpos != std::string::npos) {
    std::size_t p = kpos + std::strlen("\"write_kinds\":[");
    while (p < header.size() && header[p] != ']') {
      if (header[p] == '"') {
        const std::size_t q = header.find('"', p + 1);
        if (q == std::string::npos) break;
        kinds.push_back(header.substr(p + 1, q - p - 1));
        p = q + 1;
      } else {
        ++p;
      }
    }
  }
  check(!kinds.empty(), "timeseries.jsonl: no write kinds declared");

  const char* required_fields[] = {"ops",         "ssd_reads",   "disk_reads",
                                   "disk_writes", "cleanings",   "dez_pages",
                                   "old_pages",   "stale_groups", "log_used_pages",
                                   "dez_live_bytes", "dez_dead_bytes",
                                   "dez_boundary_pages", "dez_spare_pages",
                                   "mean_latency_us"};
  double prev_t = -1.0;
  std::uint64_t total_ops = 0;
  std::size_t buckets = 0;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    if (line.empty()) continue;
    ++buckets;
    double t = 0.0, ops = 0.0;
    check(json_number(line, "t", &t), "timeseries.jsonl: bucket missing t");
    check(json_number(line, "ops", &ops), "timeseries.jsonl: bucket missing ops");
    check(t >= prev_t, "timeseries.jsonl: t not non-decreasing");
    prev_t = t;
    total_ops += static_cast<std::uint64_t>(ops);
    for (const char* field : required_fields) {
      double v = 0.0;
      check(json_number(line, field, &v),
            std::string("timeseries.jsonl: bucket missing field ") + field);
    }
    for (const std::string& kind : kinds) {
      double v = 0.0;
      check(json_number(line, "ssd_writes_" + kind, &v),
            "timeseries.jsonl: bucket missing ssd_writes_" + kind);
    }
  }
  check(buckets > 0, "timeseries.jsonl: no buckets");
  check(total_ops > 0, "timeseries.jsonl: no requests recorded across buckets");
  std::printf("timeseries.jsonl: %zu buckets, %llu ops, %zu write kinds\n",
              buckets, static_cast<unsigned long long>(total_ops), kinds.size());
}

// ---------------------------------------------------------------------------
// trace.json
// ---------------------------------------------------------------------------

struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  std::uint64_t request = 0;
};

void validate_trace(const std::string& dir) {
  std::string body;
  if (!read_file(dir + "/trace.json", &body)) {
    fail("trace.json: cannot read");
    return;
  }
  check(body.find("\"traceEvents\"") != std::string::npos,
        "trace.json: missing traceEvents array");

  // Parse the complete ("X") events; the writer emits one object per line.
  std::vector<TraceEvent> events;
  for (const std::string& line : split_lines(body)) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    TraceEvent ev;
    const std::size_t npos = line.find("\"name\":\"");
    if (npos == std::string::npos) {
      fail("trace.json: X event without name: " + line);
      continue;
    }
    const std::size_t nend = line.find('"', npos + 8);
    ev.name = line.substr(npos + 8, nend - npos - 8);
    double v = 0.0;
    check(json_number(line, "ts", &v), "trace.json: X event missing ts");
    ev.ts_us = v;
    check(json_number(line, "dur", &v), "trace.json: X event missing dur");
    ev.dur_us = v;
    if (json_number(line, "request", &v)) {
      ev.request = static_cast<std::uint64_t>(v);
    }
    events.push_back(ev);
  }
  check(!events.empty(), "trace.json: no complete events");

  // Reconciliation: group by request id. Root stages own the window; any
  // other stage with the same id must nest inside it and the stage
  // durations must sum to at most the root duration.
  const std::set<std::string> root_stages = {"request", "clean", "heal",
                                             "recovery"};
  std::map<std::uint64_t, const TraceEvent*> roots;
  std::map<std::uint64_t, std::vector<const TraceEvent*>> children;
  std::size_t dup_roots = 0;
  for (const TraceEvent& ev : events) {
    if (ev.request == 0) continue;  // ring-evicted orphan context
    if (root_stages.count(ev.name) > 0) {
      if (!roots.emplace(ev.request, &ev).second) ++dup_roots;
    } else {
      children[ev.request].push_back(&ev);
    }
  }
  check(dup_roots == 0, "trace.json: duplicate root span for a request id");
  check(!roots.empty(), "trace.json: no root spans survived in the ring");

  // Epsilon: the Chrome format rounds to 0.001 us per edge.
  std::size_t reconciled = 0;
  for (const auto& [id, root] : roots) {
    const auto it = children.find(id);
    if (it == children.end()) {
      ++reconciled;  // a root with no nested stages is trivially consistent
      continue;
    }
    const double eps =
        0.002 * (static_cast<double>(it->second.size()) + 1.0) + 0.01;
    const double root_start = root->ts_us;
    const double root_end = root->ts_us + root->dur_us;
    bool ok = true;
    std::vector<std::pair<double, double>> intervals;
    intervals.reserve(it->second.size());
    for (const TraceEvent* c : it->second) {
      if (c->ts_us < root_start - eps || c->ts_us + c->dur_us > root_end + eps) {
        fail("trace.json: request " + std::to_string(id) + " child span '" +
             c->name + "' outside its root window");
        ok = false;
      }
      intervals.emplace_back(c->ts_us, c->ts_us + c->dur_us);
    }
    // Stage spans nest (e.g. metadata_log inside dez_commit), so a plain
    // sum double-counts; the union of the child intervals is what must fit
    // inside the root.
    std::sort(intervals.begin(), intervals.end());
    double covered = 0.0, cur_start = 0.0, cur_end = -1.0;
    for (const auto& [s, e] : intervals) {
      if (s > cur_end) {
        covered += cur_end > cur_start ? cur_end - cur_start : 0.0;
        cur_start = s;
        cur_end = e;
      } else if (e > cur_end) {
        cur_end = e;
      }
    }
    covered += cur_end > cur_start ? cur_end - cur_start : 0.0;
    if (covered > root->dur_us + eps) {
      fail("trace.json: request " + std::to_string(id) +
           " child span union covers " + std::to_string(covered) +
           " us > root " + std::to_string(root->dur_us) + " us");
      ok = false;
    }
    reconciled += ok ? 1 : 0;
  }
  std::printf("trace.json: %zu events, %zu roots, %zu reconciled\n",
              events.size(), roots.size(), reconciled);
}


// ---------------------------------------------------------------------------
// health.json
// ---------------------------------------------------------------------------

void validate_health_file(const std::string& dir, const std::string& file) {
  std::string body;
  if (!read_file(dir + "/" + file, &body)) {
    fail(file + ": cannot read");
    return;
  }
  check(body.find("\"kdd-health-v1\"") != std::string::npos,
        file + ": missing schema tag kdd-health-v1");
  check(body.find("\"windows\"") != std::string::npos &&
            body.find("\"fast\"") != std::string::npos &&
            body.find("\"slow\"") != std::string::npos,
        file + ": missing fast/slow window sections");
  double v = 0.0;
  check(json_number(body, "attainment", &v), file + ": missing attainment");
  check(json_number(body, "burn_rate", &v), file + ": missing burn_rate");
  check(body.find("\"alerts\":[") != std::string::npos,
        file + ": missing alerts array");
  std::size_t rules = 0;
  for (const char* rule :
       {"latency_burn", "hit_ratio_collapse", "admission_reject_spike",
        "queue_stall", "wear_imbalance", "array_degraded"}) {
    if (body.find(std::string("\"rule\":\"") + rule + "\"") !=
        std::string::npos) {
      ++rules;
    } else {
      fail(file + ": missing alert rule entry " + rule);
    }
  }
  std::printf("%s: ok (%zu rules)\n", file.c_str(), rules);
}

void validate_health(const std::string& dir) {
  validate_health_file(dir, "health.json");
}

// ---------------------------------------------------------------------------
// flight.json
// ---------------------------------------------------------------------------

void validate_flight(const std::string& dir) {
  std::string body;
  if (!read_file(dir + "/flight.json", &body)) {
    fail("flight.json: cannot read");
    return;
  }
  check(body.find("\"kdd-flight-v1\"") != std::string::npos,
        "flight.json: missing schema tag kdd-flight-v1");
  check(body.find("\"t_unit\":\"sim_us\"") != std::string::npos,
        "flight.json: missing t_unit");
  check(body.find("\"reason\":") != std::string::npos,
        "flight.json: missing reason");
  check(body.find("\"events\":[") != std::string::npos,
        "flight.json: missing events array");

  // The dump is chronological: seq strictly increasing, t_us non-decreasing.
  std::uint64_t events = 0;
  long long prev_seq = -1;
  double prev_t = -1.0;
  bool have_dump_mark = false;
  std::size_t pos = 0;
  while ((pos = body.find("{\"seq\":", pos)) != std::string::npos) {
    const std::string obj = body.substr(pos, body.find('}', pos) - pos + 1);
    pos += 7;
    double seq = 0.0, t = 0.0;
    check(json_number(obj, "seq", &seq), "flight.json: event missing seq");
    check(json_number(obj, "t_us", &t), "flight.json: event missing t_us");
    check(obj.find("\"kind\":\"") != std::string::npos,
          "flight.json: event missing kind");
    check(static_cast<long long>(seq) > prev_seq,
          "flight.json: seq not strictly increasing");
    check(t >= prev_t, "flight.json: t_us not non-decreasing");
    prev_seq = static_cast<long long>(seq);
    prev_t = t;
    if (obj.find("\"kind\":\"dump\"") != std::string::npos) {
      have_dump_mark = true;
    }
    ++events;
  }
  check(events > 0, "flight.json: no events");
  check(have_dump_mark, "flight.json: missing dump-mark event");
  std::printf("flight.json: %llu events, chronological\n",
              static_cast<unsigned long long>(events));
}

// ---------------------------------------------------------------------------
// scrape_*.{prom,json} (optional: written when the replay exercised the
// live serving surface)
// ---------------------------------------------------------------------------

void validate_scrapes(const std::string& dir) {
  std::string probe;
  if (read_file(dir + "/scrape_metrics.prom", &probe)) {
    validate_prometheus_file(dir, "scrape_metrics.prom",
                             /*require_span_families=*/true);
  }
  if (read_file(dir + "/scrape_health.json", &probe)) {
    validate_health_file(dir, "scrape_health.json");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: telemetry_validate <artifact-dir>\n");
    return 2;
  }
  const std::string dir = argv[1];
  validate_prometheus(dir);
  validate_snapshot(dir);
  validate_timeseries(dir);
  validate_trace(dir);
  validate_health(dir);
  validate_flight(dir);
  validate_scrapes(dir);
  if (g_failures > 0) {
    std::fprintf(stderr, "telemetry_validate: %d check(s) FAILED under %s\n",
                 g_failures, dir.c_str());
    return 1;
  }
  std::printf("telemetry_validate: all checks passed under %s\n", dir.c_str());
  return 0;
}
