// Reliability drill: rolling disk replacement + background scrub + a power
// cut mid-rebuild, under a live workload, with the end state verified
// byte-identical against an undisturbed run of the same workload. Exports the
// final metrics registry (Prometheus text + JSON snapshot) so CI can assert
// on kdd_rebuild_progress / kdd_degraded_reads_total and friends.
//
// Usage: reliability_drill [--seed N] [--out DIR] [--no-power-cut]
// Exit code 0 == zero integrity violations.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "harness/drill.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"

int main(int argc, char** argv) {
  using namespace kdd;

  std::uint64_t seed = 42;
  std::string out_dir;
  DrillConfig cfg;
  cfg.power_cut_mid_rebuild = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--no-power-cut") == 0) {
      cfg.power_cut_mid_rebuild = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--out DIR] [--no-power-cut]\n",
                   argv[0]);
      return 2;
    }
  }

  ReliabilityDrillRunner runner(cfg);
  const DrillReport rep = runner.run(seed);

  std::printf("reliability drill (seed %llu)\n",
              static_cast<unsigned long long>(seed));
  std::printf("  requests completed ........ %d\n", rep.requests_completed);
  std::printf("  healthy digest ............ %016llx\n",
              static_cast<unsigned long long>(rep.healthy_digest));
  std::printf("  faulted digest ............ %016llx  (%s)\n",
              static_cast<unsigned long long>(rep.faulted_digest),
              rep.healthy_digest == rep.faulted_digest ? "identical"
                                                       : "DIVERGED");
  std::printf("  rebuilds .................. %llu started, %llu completed\n",
              static_cast<unsigned long long>(rep.rebuilds_started),
              static_cast<unsigned long long>(rep.rebuilds_completed));
  std::printf("  stale rebuild folds ....... %llu (must be 0)\n",
              static_cast<unsigned long long>(rep.stale_rebuild_folds));
  std::printf("  degraded reads (array) .... %llu\n",
              static_cast<unsigned long long>(rep.degraded_reads));
  std::printf("  degraded cache hits ....... %llu\n",
              static_cast<unsigned long long>(rep.degraded_cache_hits));
  std::printf("  degraded delta folds ...... %llu\n",
              static_cast<unsigned long long>(rep.degraded_delta_folds));
  std::printf("  barrier deferrals ......... %llu\n",
              static_cast<unsigned long long>(rep.barrier_deferrals));
  std::printf("  requests while degraded ... %llu\n",
              static_cast<unsigned long long>(rep.requests_while_degraded));
  std::printf("  scrub ..................... %llu groups, %llu repairs, %llu passes\n",
              static_cast<unsigned long long>(rep.scrub_groups),
              static_cast<unsigned long long>(rep.scrub_repairs),
              static_cast<unsigned long long>(rep.scrub_passes));
  std::printf("  power cut mid-rebuild ..... %s\n",
              rep.power_cut_fired
                  ? (rep.checkpoint_resumed ? "fired, checkpoint resumed"
                                            : "fired, RESUME FAILED")
                  : "not fired");
  std::printf("  foreground p99 ops ........ healthy %llu, faulted %llu\n",
              static_cast<unsigned long long>(rep.healthy_p99_ops),
              static_cast<unsigned long long>(rep.faulted_p99_ops));

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
    obs::write_text_file(out_dir + "/metrics.prom", obs::prometheus_text(snap));
    obs::write_text_file(out_dir + "/snapshot.json", obs::snapshot_json(snap));
    std::printf("  metrics ................... %s/metrics.prom, %s/snapshot.json\n",
                out_dir.c_str(), out_dir.c_str());
  }

  if (!rep.ok()) {
    std::printf("VIOLATIONS (%zu):\n", rep.violations.size());
    for (const std::string& v : rep.violations) {
      std::printf("  - %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("OK: zero integrity violations\n");
  return 0;
}
