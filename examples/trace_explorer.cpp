// Trace explorer: compare caching policies on a block-level trace, or
// analyse the trace's locality structure.
//
// Usage:
//   trace_explorer [workload] [policy] [cache_kpages] [locality%]
//     workload: Fin1 | Fin2 | Hm0 | Web0 (synthetic, Table I-calibrated)
//               or a path to a canonical trace file ("time_us,page,pages,R|W")
//     policy:   Nossd | WT | WA | LeavO | KDD | all   (default: all)
//               or "analyze" to print reuse-distance / LRU-curve /
//               sequentiality / working-set statistics instead
//     cache_kpages: SSD size in thousands of 4 KiB pages (default: 32)
//     locality%: mean delta compression ratio for KDD (default: 25)
//
// Prints hit ratio, SSD write traffic breakdown, disk I/O and — through the
// discrete-event model — the mean/percentile response times of an open-loop
// replay.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "harness/harness.hpp"
#include "trace/analysis.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"

namespace {

using namespace kdd;

Trace load_workload(const std::string& name) {
  if (name == "Fin1" || name == "Fin2" || name == "Hm0" || name == "Web0") {
    return generate_preset(name, experiment_scale(0.1));
  }
  return read_canonical_trace(name, name);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string workload = argc > 1 ? argv[1] : "Fin1";
  const std::string policy_name = argc > 2 ? argv[2] : "all";
  const std::uint64_t cache_kpages =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 32;
  const double locality = argc > 4 ? std::atof(argv[4]) / 100.0 : 0.25;

  Trace trace = load_workload(workload);
  const TraceStats tstats = compute_stats(trace);
  std::printf("workload %s: %zu requests, %lluk unique pages, read ratio %.2f\n\n",
              workload.c_str(), trace.records.size(),
              static_cast<unsigned long long>(tstats.unique_pages_total / 1000),
              tstats.read_ratio());

  if (policy_name == "analyze") {
    // Locality structure: the numbers behind cache-policy behaviour.
    const ReuseProfile all = compute_reuse_profile(trace);
    const ReuseProfile writes = compute_reuse_profile(trace, /*writes_only=*/true);
    const SequentialityProfile seq = compute_sequentiality(trace);
    std::printf("sequential fraction: %.1f%%   mean request: %.2f pages\n",
                seq.sequential_fraction * 100, seq.mean_request_pages);
    std::printf("cold accesses: %s (all) / %s (writes)\n\n",
                format_pct(static_cast<double>(all.cold_accesses) /
                           static_cast<double>(all.total_accesses)).c_str(),
                format_pct(static_cast<double>(writes.cold_accesses) /
                           static_cast<double>(writes.total_accesses)).c_str());
    TextTable lru({"Cache (k pages)", "LRU hit ratio", "write-stream hit ratio"});
    for (const std::uint64_t pages : {8ull, 16ull, 32ull, 64ull, 128ull, 256ull}) {
      lru.add_row({std::to_string(pages), format_pct(all.lru_hit_ratio(pages * 1000)),
                   format_pct(writes.lru_hit_ratio(pages * 1000))});
    }
    lru.print();
    std::printf("\nworking set per 10-minute window:\n");
    const auto profile =
        compute_working_set_profile(trace, 10ull * 60 * kUsPerSec);
    OnlineStats ws;
    for (const WorkingSetPoint& p : profile) {
      ws.add(static_cast<double>(p.distinct_pages));
    }
    std::printf("windows: %zu   distinct pages/window: mean %.0f  min %.0f  max %.0f\n",
                profile.size(), ws.mean(), ws.min(), ws.max());
    return 0;
  }

  const RaidGeometry geo = paper_geometry(tstats.max_page);
  std::vector<PolicyKind> kinds;
  if (policy_name == "all") {
    kinds = {PolicyKind::kNossd, PolicyKind::kWA, PolicyKind::kWT, PolicyKind::kLeavO,
             PolicyKind::kKdd};
  } else {
    for (const PolicyKind k : {PolicyKind::kNossd, PolicyKind::kWA, PolicyKind::kWT,
                               PolicyKind::kLeavO, PolicyKind::kKdd}) {
      if (policy_kind_name(k) == policy_name) kinds.push_back(k);
    }
    if (kinds.empty()) {
      std::fprintf(stderr, "unknown policy: %s\n", policy_name.c_str());
      return 1;
    }
  }

  TextTable table({"Policy", "Hit ratio", "SSD writes", "Metadata", "Disk R", "Disk W",
                   "Mean resp (ms)", "p99 (ms)"});
  for (const PolicyKind kind : kinds) {
    PolicyConfig cfg;
    cfg.ssd_pages = cache_kpages * 1000;
    cfg.delta_ratio_mean = locality;
    // Counter pass for traffic/hit numbers.
    auto counter_policy = make_policy(kind, cfg, geo);
    const CacheStats s = run_counter_trace(*counter_policy, trace, geo.data_pages());
    // Timed pass for response times.
    auto timed_policy = make_policy(kind, cfg, geo);
    EventSimulator sim(paper_sim_config(geo.num_disks), timed_policy.get());
    const SimResult r = sim.run_open_loop(trace);

    table.add_row(
        {policy_kind_name(kind),
         kind == PolicyKind::kNossd || kind == PolicyKind::kWA
             ? std::string("-")
             : format_pct(s.hit_ratio()),
         format_bytes(s.write_traffic_bytes()),
         std::to_string(s.metadata_ssd_writes()),
         std::to_string(s.disk_reads), std::to_string(s.disk_writes),
         TextTable::num(r.mean_response_ms(), 2),
         TextTable::num(static_cast<double>(r.latency.percentile_us(0.99)) / 1000.0,
                        1)});
  }
  table.print();
  return 0;
}
