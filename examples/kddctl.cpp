// kddctl: a small interactive/scriptable front end to the user-space KDD
// stack — the closest analogue to poking the paper's kernel prototype from
// a shell. Commands arrive on stdin (or from a script via redirection):
//
//   write <lba> <seed>      write a deterministic page to <lba>
//   update <lba> <ratio%>   mutate the page at <lba> with content locality
//   read <lba>              read and fingerprint the page at <lba>
//   verify                  re-read every written page and check contents
//   stats                   Prometheus snapshot of the live metrics registry
//                           + segment staging summary (fill, seals, WA gauge)
//   health                  health engine JSON (SLO windows + alert table)
//   alerts                  one line per burn-rate rule (state, fires, value)
//   dump [path]             dump the flight recorder (default flight.json)
//   flush                   run the cleaner to completion
//   fail-disk <i>           fail disk i and run KDD's recovery protocol
//   fail-ssd                fail the cache device (resync + cold restart)
//   crash                   power failure: rebuild from metadata log + NVRAM
//   scrub                   verify parity of every stripe
//   quit
//
// The session runs the continuous health engine and flight recorder: every
// data-path command feeds the rolling SLO windows (clocked 1 ms of sim time
// per operation, latencies measured in wall microseconds), so health/alerts
// reflect the commands you just ran and dump captures their event trail.
//
// Example session:  printf 'write 5 1\nupdate 5 20\nread 5\nflush\nscrub\n' | kddctl
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>

#include "blockdev/ssd_model.hpp"
#include "cache/backend.hpp"
#include "cache/segment.hpp"
#include "common/stats.hpp"
#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/health.hpp"
#include "raid/raid_array.hpp"

namespace {

using namespace kdd;

struct Controller {
  Controller()
      : array(make_geo()), ssd(make_ssd()), nvram(kPageSize, 255), gen(1234) {
    reset_cache(false);
    obs::HealthEngine::install(&health);
    obs::FlightRecorder::set_enabled(true);
  }
  ~Controller() { obs::FlightRecorder::set_enabled(false); }

  /// Runs one data-path operation: 1 ms of sim time per op keeps the rolling
  /// windows deterministic in op counts; the latency fed to the SLO tracker
  /// is the wall time the operation actually took.
  template <typename Fn>
  IoStatus timed_op(Fn&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    const IoStatus st = fn();
    const auto us = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    health.observe_request(++ops * 1000, us);
    return st;
  }

  static RaidGeometry make_geo() {
    RaidGeometry geo;
    geo.level = RaidLevel::kRaid5;
    geo.num_disks = 5;
    geo.chunk_pages = 16;
    geo.disk_pages = 8192;
    return geo;
  }
  static SsdConfig make_ssd() {
    SsdConfig cfg;
    cfg.logical_pages = 4096;
    return cfg;
  }

  void reset_cache(bool recover) {
    PolicyConfig cfg;
    cfg.ssd_pages = 4096;
    // Segment staging on: commits accumulate in the RAM segment and hit the
    // SSD as sealed sequential batches, so 'stats' shows the fill/seal/WA
    // gauges moving as you type.
    cfg.segment_staging = true;
    // Elastic delta zone on: commits append into open-extent slack, the GC
    // compacts fragmented DEZ pages, and the DAZ/DEZ boundary adapts to the
    // update compressibility — 'stats' shows the capacity line moving.
    cfg.dez_elastic = true;
    cfg.dez_gc = true;
    cfg.adaptive_boundary = true;
    kdd = std::make_unique<KddCache>(cfg, &array, &ssd, &nvram, recover);
  }

  std::uint64_t fingerprint(const Page& p) const {
    std::uint64_t h = 1469598103934665603ull;
    for (const std::uint8_t b : p) h = (h ^ b) * 1099511628211ull;
    return h;
  }

  RaidArray array;
  SsdModel ssd;
  NvramState nvram;
  ContentGenerator gen;
  Rng rng{99};
  std::unique_ptr<KddCache> kdd;
  std::unordered_map<Lba, Page> truth;
  obs::HealthEngine health;
  std::uint64_t ops = 0;
};

}  // namespace

int main() {
  Controller ctl;
  std::printf("kddctl: RAID-5 (5 disks) + 16 MiB SSD cache + KDD. 'help' for commands.\n");
  std::string line;
  char buf[256];
  while (std::fgets(buf, sizeof buf, stdin)) {
    std::istringstream in(buf);
    std::string cmd;
    if (!(in >> cmd)) continue;

    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      std::printf("write <lba> <seed> | update <lba> <ratio%%> | read <lba> | verify |\n"
                  "stats | health | alerts | dump [path] | flush | fail-disk <i> |\n"
                  "fail-ssd | crash | scrub | quit\n");
    } else if (cmd == "write") {
      Lba lba = 0;
      std::uint64_t seed = 0;
      in >> lba >> seed;
      Page p = ContentGenerator(seed).base_page(lba);
      if (ctl.timed_op([&] { return ctl.kdd->write(lba, p); }) ==
          IoStatus::kOk) {
        ctl.truth[lba] = std::move(p);
        std::printf("wrote page %llu\n", static_cast<unsigned long long>(lba));
      } else {
        std::printf("write FAILED\n");
      }
    } else if (cmd == "update") {
      Lba lba = 0;
      double ratio = 20;
      in >> lba >> ratio;
      const auto it = ctl.truth.find(lba);
      if (it == ctl.truth.end()) {
        std::printf("page %llu was never written\n", static_cast<unsigned long long>(lba));
        continue;
      }
      Page p = ctl.gen.mutate(it->second, ratio / 100.0, ctl.rng);
      if (ctl.timed_op([&] { return ctl.kdd->write(lba, p); }) ==
          IoStatus::kOk) {
        it->second = std::move(p);
        std::printf("updated page %llu (~%.0f%% delta)\n",
                    static_cast<unsigned long long>(lba), ratio);
      }
    } else if (cmd == "read") {
      Lba lba = 0;
      in >> lba;
      Page p = make_page();
      if (ctl.timed_op([&] { return ctl.kdd->read(lba, p); }) !=
          IoStatus::kOk) {
        std::printf("read FAILED\n");
        continue;
      }
      const auto it = ctl.truth.find(lba);
      std::printf("page %llu fp=%016llx %s\n", static_cast<unsigned long long>(lba),
                  static_cast<unsigned long long>(ctl.fingerprint(p)),
                  it == ctl.truth.end()        ? ""
                  : it->second == p            ? "(matches truth)"
                                               : "(MISMATCH!)");
    } else if (cmd == "verify") {
      std::uint64_t bad = 0;
      Page p = make_page();
      for (const auto& [lba, page] : ctl.truth) {
        if (ctl.timed_op([&] { return ctl.kdd->read(lba, p); }) !=
                IoStatus::kOk ||
            p != page) {
          ++bad;
        }
      }
      std::printf("verify: %zu pages, %llu mismatches\n", ctl.truth.size(),
                  static_cast<unsigned long long>(bad));
    } else if (cmd == "stats") {
      // The real metrics snapshot — same bytes a scraper would get from
      // /metrics — instead of a hand-picked printf subset. The registry
      // already carries the cache/wear/health series the old format showed.
      std::fputs(
          obs::prometheus_text(obs::MetricsRegistry::global().snapshot())
              .c_str(),
          stdout);
      // Human-readable segment staging summary on top of the raw registry:
      // open-segment fill, seals so far, and the write-amplification gauge
      // (SSD write commands per 1000 committed pages; 1000 = unstaged).
      CacheSsd& cache = ctl.kdd->cache_ssd();
      const SegmentStats& seg = cache.segment_stats();
      const SegmentStager* stager = cache.stager();
      const std::uint64_t seg_pages =
          stager != nullptr ? stager->config().segment_pages : 0;
      std::printf(
          "# segment staging: fill %zu/%llu pages, %llu seals (%llu forced), "
          "%.1f write cmds per kilopage committed\n",
          stager != nullptr ? stager->live_pages() : std::size_t{0},
          static_cast<unsigned long long>(seg_pages),
          static_cast<unsigned long long>(seg.seals),
          static_cast<unsigned long long>(seg.forced_seals),
          cache.pages_committed() > 0
              ? 1000.0 * static_cast<double>(cache.write_ops()) /
                    static_cast<double>(cache.pages_committed())
              : 0.0);
      // Elastic delta-zone capacity: occupancy vs the adaptive boundary,
      // live/dead packed bytes (dead = reclaimable fragmentation), and the
      // spare pages currently absorbing destage bursts.
      std::printf(
          "# dez capacity: %llu/%llu pages (boundary), %llu live B, "
          "%llu dead B, %llu spare pages, gc %llu passes / %llu pages / "
          "%llu deltas, %llu boundary moves\n",
          static_cast<unsigned long long>(ctl.kdd->dez_pages()),
          static_cast<unsigned long long>(ctl.kdd->dez_boundary_pages()),
          static_cast<unsigned long long>(ctl.kdd->dez_live_bytes()),
          static_cast<unsigned long long>(ctl.kdd->dez_dead_bytes()),
          static_cast<unsigned long long>(ctl.kdd->elastic_spare_pages()),
          static_cast<unsigned long long>(ctl.kdd->gc_passes()),
          static_cast<unsigned long long>(ctl.kdd->gc_pages_reclaimed()),
          static_cast<unsigned long long>(ctl.kdd->gc_deltas_relocated()),
          static_cast<unsigned long long>(ctl.kdd->boundary_moves()));
    } else if (cmd == "health") {
      std::fputs(ctl.health.health_json().c_str(), stdout);
    } else if (cmd == "alerts") {
      for (const obs::AlertStatus& st : ctl.health.alerts()) {
        std::printf("%-24s %-8s fired=%llu value=%.3f\n",
                    obs::alert_rule_name(st.rule),
                    st.active ? "ACTIVE" : "ok",
                    static_cast<unsigned long long>(st.fired_count), st.value);
      }
    } else if (cmd == "dump") {
      std::string path;
      if (!(in >> path)) path = "flight.json";
      const bool ok = obs::FlightRecorder::global().dump(path, "kddctl");
      std::printf("flight recorder %s -> %s\n",
                  ok ? "dumped" : "DUMP FAILED", path.c_str());
    } else if (cmd == "flush") {
      ctl.kdd->flush();
      std::printf("flushed; stale groups now %llu\n",
                  static_cast<unsigned long long>(ctl.kdd->stale_groups()));
    } else if (cmd == "fail-disk") {
      std::uint32_t disk = 0;
      in >> disk;
      if (disk >= 5) {
        std::printf("disk index 0..4\n");
        continue;
      }
      const std::uint64_t unsafe = ctl.kdd->handle_disk_failure(disk);
      std::printf("disk %u failed and rebuilt; %llu groups rebuilt from stale parity\n",
                  disk, static_cast<unsigned long long>(unsafe));
    } else if (cmd == "fail-ssd") {
      const std::uint64_t resynced = ctl.kdd->handle_ssd_failure();
      std::printf("SSD replaced; %llu stale groups resynced; cache is cold\n",
                  static_cast<unsigned long long>(resynced));
    } else if (cmd == "crash") {
      ctl.reset_cache(/*recover=*/true);
      std::printf("power failure simulated; recovered %llu stale groups from "
                  "metadata log + NVRAM\n",
                  static_cast<unsigned long long>(ctl.kdd->stale_groups()));
    } else if (cmd == "scrub") {
      const auto bad = ctl.array.scrub();
      std::printf("scrub: %zu inconsistent stripes (%llu tracked stale)\n",
                  bad.size(), static_cast<unsigned long long>(ctl.kdd->stale_groups()));
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
  }
  return 0;
}
