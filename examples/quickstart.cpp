// Quickstart: assemble a KDD-cached RAID-5 array and push real data
// through it.
//
//   RaidArray  — 5 memory-backed disks, 64 KiB chunks, real parity
//   SsdModel   — flash SSD with an FTL, GC and wear accounting
//   KddCache   — the paper's cache: data zone + delta zone + metadata log
//
// The example writes versioned pages with realistic content locality, reads
// them back (hits combine DAZ pages with compressed deltas), then flushes
// the deferred parity updates and verifies the array scrubs clean.
#include <cstdio>

#include "blockdev/ssd_model.hpp"
#include "common/stats.hpp"
#include "compress/content.hpp"
#include "kdd/kdd_cache.hpp"
#include "raid/raid_array.hpp"

int main() {
  using namespace kdd;

  // 1. Primary storage: RAID-5 over 5 disks (the paper's testbed shape).
  RaidGeometry geo;
  geo.level = RaidLevel::kRaid5;
  geo.num_disks = 5;
  geo.chunk_pages = 16;  // 64 KiB chunks
  geo.disk_pages = 16384;
  RaidArray array(geo);

  // 2. Cache device: a small SSD with a real FTL.
  SsdConfig ssd_cfg;
  ssd_cfg.logical_pages = 8192;  // 32 MiB cache
  SsdModel ssd(ssd_cfg);

  // 3. KDD on top.
  PolicyConfig cfg;
  cfg.ssd_pages = ssd_cfg.logical_pages;
  // Segment staging: committed pages accumulate in a RAM segment and land
  // as one sealed sequential write instead of one command each.
  cfg.segment_staging = true;
  KddCache kdd(cfg, &array, &ssd);

  // 4. A workload with content locality: each write changes ~20 % of a page.
  const ContentGenerator gen(7);
  Rng rng(8);
  std::printf("writing 2000 pages, then updating hot pages with ~20%% churn...\n");
  std::vector<Page> current(2000);
  for (Lba lba = 0; lba < 2000; ++lba) {
    current[lba] = gen.base_page(lba);
    kdd.write(lba, current[lba]);
  }
  for (int i = 0; i < 6000; ++i) {
    const Lba lba = rng.next_below(400);  // hot subset
    current[lba] = gen.mutate(current[lba], 0.20, rng);
    kdd.write(lba, current[lba]);
  }

  // 5. Read back through the cache (old pages are served as DAZ + delta).
  Page buf = make_page();
  for (Lba lba = 0; lba < 2000; ++lba) {
    if (kdd.read(lba, buf) != IoStatus::kOk || buf != current[lba]) {
      std::printf("MISMATCH at page %llu\n", static_cast<unsigned long long>(lba));
      return 1;
    }
  }
  std::printf("all 2000 pages read back correctly\n\n");

  // 6. Report.
  const CacheStats s = kdd.stats();
  std::printf("hit ratio:         %s\n", format_pct(s.hit_ratio()).c_str());
  std::printf("stale parity:      %llu groups pending\n",
              static_cast<unsigned long long>(kdd.stale_groups()));
  std::printf("old / delta pages: %llu / %llu\n",
              static_cast<unsigned long long>(kdd.old_pages()),
              static_cast<unsigned long long>(kdd.dez_pages()));
  std::printf("SSD write traffic: %s (fills %llu, allocs %llu, delta pages %llu, metadata %llu)\n",
              format_bytes(s.write_traffic_bytes()).c_str(),
              static_cast<unsigned long long>(s.ssd_writes[0]),
              static_cast<unsigned long long>(s.ssd_writes[1]),
              static_cast<unsigned long long>(s.ssd_writes[3]),
              static_cast<unsigned long long>(s.metadata_ssd_writes()));
  const SsdWearStats wear = ssd.wear();
  std::printf("SSD wear:          %llu NAND writes, WA %.2f, %llu erases\n",
              static_cast<unsigned long long>(wear.nand_page_writes),
              wear.write_amplification(),
              static_cast<unsigned long long>(wear.block_erases));
  std::printf("SSD host commands: %llu sequential (%s sealed) + %llu random (%s)\n\n",
              static_cast<unsigned long long>(wear.host_write_ops_seq),
              format_bytes(wear.host_bytes_seq()).c_str(),
              static_cast<unsigned long long>(wear.host_write_ops_rand),
              format_bytes(wear.host_bytes_rand()).c_str());

  // 7. Flush deferred parity and verify the array is fully consistent.
  kdd.flush();
  const bool clean = array.scrub().empty();
  std::printf("after flush: array scrub %s\n", clean ? "CLEAN" : "INCONSISTENT");
  return clean ? 0 : 1;
}
